//! Fault injection surface of the emulator.
//!
//! A [`FaultSpec`] bundles a deterministic [`FaultPlan`] with the
//! recovery-protocol knobs: heartbeat cadence and detection timeout,
//! and the delivery retry [`BackoffPolicy`]. Passing
//! [`FaultSpec::none`] (or an empty plan) to
//! [`run_job_with_faults`](crate::runtime::run_job_with_faults) is
//! exactly [`run_job`](crate::runtime::run_job): no controller actor is
//! installed, routers use the all-up mask (identical RNG draws), and
//! the run is byte-identical to a fault-free one.
//!
//! What the layer models:
//!
//! - **Crash**: the node's instances stop (in-flight and queued work is
//!   lost with volatile state); packets arriving at the node bounce back
//!   to their senders as NACKs, which retry with exponential backoff
//!   against the live replicas the failure detector currently reports.
//! - **Detection latency is charged**: senders keep routing to a dead
//!   node until the heartbeat timeout expires; every such delivery pays
//!   a bounce round-trip plus backoff before failing over.
//! - **Fencing**: once a node is *detected* down, unflushed instances
//!   on it have EOS broadcast on their behalf so the pipeline drains
//!   instead of waiting forever.
//! - **Degrade**: the node keeps running with scaled CPU speed and disk
//!   rate — and is *not* detected as failed (no false positives from
//!   slowness alone).
//! - **LinkLoss**: each packet on the edge is dropped with the given
//!   probability (decided by the sender's deterministic RNG); the loss
//!   is surfaced as a NACK after a round trip and retried.

use crate::config::ClusterConfig;
use crate::repair::RepairSpec;
use lmas_core::NodeId;
use lmas_sim::{BackoffPolicy, FaultEvent, FaultPlan, SimDuration, SimTime};

/// Health of one emulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeHealth {
    /// Fully operational.
    Up,
    /// Running with scaled-down resources.
    Degraded {
        /// Remaining fraction of CPU speed, in `(0, 1]`.
        cpu_factor: f64,
        /// Remaining fraction of disk bandwidth, in `(0, 1]`.
        disk_factor: f64,
    },
    /// Crashed: processes nothing, bounces deliveries.
    Down,
}

/// Fault-injection parameters for one run.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The scheduled fault events (node indices per [`node_index`]).
    pub plan: FaultPlan,
    /// Heartbeat probe cadence of the failure detector.
    pub heartbeat_period: SimDuration,
    /// Silence threshold before a node is declared Down. Must be at
    /// least one period; detection lands on the first heartbeat tick at
    /// or after `crash + timeout`, so that latency is charged in
    /// virtual time (senders keep paying bounce round-trips until then).
    pub heartbeat_timeout: SimDuration,
    /// Retry schedule for failed deliveries.
    pub backoff: BackoffPolicy,
    /// When true, exhausting every live replica of a stage aborts the
    /// run with [`JobError::AllReplicasDown`](crate::JobError); when
    /// false the affected records are dropped (counted in
    /// [`FaultStats`]) and the run drains — degraded-mode operation for
    /// callers with an orchestration-level repair path.
    pub fail_fast: bool,
    /// Background re-replication of durable blocks (see
    /// [`RepairSpec`]). `None` (the default) leaves the runtime exactly
    /// as before; `Some` tracks a replicated block population across
    /// the plan's crashes and repairs it under per-node bandwidth caps
    /// that contend with the foreground job.
    pub repair: Option<RepairSpec>,
}

impl FaultSpec {
    /// No faults: behaves exactly like the fault-free runtime.
    pub fn none() -> FaultSpec {
        FaultSpec::with_plan(FaultPlan::new())
    }

    /// `plan` with 2002-era protocol defaults: 5 ms heartbeats, 15 ms
    /// detection timeout, [`BackoffPolicy::default_2002`] retries, and
    /// degraded-mode (non-fatal) delivery failures.
    pub fn with_plan(plan: FaultPlan) -> FaultSpec {
        FaultSpec {
            plan,
            heartbeat_period: SimDuration::from_millis(5),
            heartbeat_timeout: SimDuration::from_millis(15),
            backoff: BackoffPolicy::default_2002(),
            fail_fast: false,
            repair: None,
        }
    }

    /// This spec with `fail_fast` set.
    pub fn failing_fast(mut self, yes: bool) -> FaultSpec {
        self.fail_fast = yes;
        self
    }

    /// This spec with background re-replication enabled per `repair`.
    pub fn with_repair(mut self, repair: RepairSpec) -> FaultSpec {
        self.repair = Some(repair);
        self
    }

    /// Whether the fault machinery engages at all. An inactive spec
    /// leaves the runtime on its fault-free fast path.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
    }
}

/// An unrecoverable delivery failure that stopped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatalFault {
    /// The destination stage whose replicas were all unreachable.
    pub stage: usize,
    /// Virtual time of the failure.
    pub at: SimTime,
}

/// Counters of fault-layer activity during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets re-sent after a NACK or drop.
    pub retries: u64,
    /// Deliveries bounced by a down node.
    pub nacks: u64,
    /// Packets dropped by lossy links.
    pub drops: u64,
    /// Records lost when a crash discarded an instance's queue and
    /// in-flight unit.
    pub lost_queued_records: u64,
    /// Records abandoned after the retry budget was exhausted (only in
    /// non-`fail_fast` mode).
    pub abandoned_records: u64,
    /// Instances that had EOS sent on their behalf after their node was
    /// detected down.
    pub fenced_instances: u64,
    /// Down-node detections by the heartbeat controller.
    pub detections: u64,
}

impl FaultStats {
    /// True when no fault-layer event fired (a clean run).
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Fold another partition's counters into this one (all fields are
    /// sums, so absorption is order-independent).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.nacks += other.nacks;
        self.drops += other.drops;
        self.lost_queued_records += other.lost_queued_records;
        self.abandoned_records += other.abandoned_records;
        self.fenced_instances += other.fenced_instances;
        self.detections += other.detections;
    }
}

/// The failure detector's verdict over time, precomputed from the plan.
///
/// Detection timing is a pure function of the plan and the protocol
/// knobs: a crash at `tc` is detected at `td = tc + k·period` where
/// `k = max(1, ceil(timeout / period))` — the first heartbeat tick (on
/// a grid anchored at the crash) at or after the silence threshold —
/// *unless* the node recovers at some `tr ≤ td`, in which case the
/// detector never fires (recovery is announced, not timed out, so the
/// detected mask flips back up at `tr` itself). Precomputing the
/// timeline turns the detector from a live ticking actor into static
/// data every partition can consult without synchronizing, which is
/// what lets faulted runs use the partitioned engine.
#[derive(Debug, Clone)]
pub struct DetectedTimeline {
    /// Per node: time-sorted `(at_ns, up)` flips of the *detected*
    /// status. A flip takes effect at `t >= at_ns`. Empty = always up.
    flips: Vec<Vec<(u64, bool)>>,
    /// Valid detections as `(node, at)`, sorted by `(at, node)` — one
    /// entry per crash that outlives its detection window. Harnesses
    /// seed exactly one detection event per entry, so the dispatch
    /// count is independent of the partition count.
    detections: Vec<(usize, SimTime)>,
}

impl DetectedTimeline {
    /// Build the timeline for `total_nodes` nodes from the plan's
    /// crash/recover events under the given heartbeat knobs.
    pub fn build(
        plan: &FaultPlan,
        period: SimDuration,
        timeout: SimDuration,
        total_nodes: usize,
    ) -> DetectedTimeline {
        let p = period.as_nanos().max(1);
        let k = timeout.as_nanos().div_ceil(p).max(1);
        let delay = k.saturating_mul(p);
        let mut flips: Vec<Vec<(u64, bool)>> = vec![Vec::new(); total_nodes];
        let mut detections: Vec<(usize, SimTime)> = Vec::new();
        // Per-node replay of the controller's state machine: `pending`
        // is the outstanding detection deadline, `detected_up` the mask.
        let mut pending: Vec<Option<u64>> = vec![None; total_nodes];
        let mut detected_up: Vec<bool> = vec![true; total_nodes];
        let mut fire = |node: usize,
                        td: u64,
                        flips: &mut Vec<Vec<(u64, bool)>>,
                        detected_up: &mut Vec<bool>| {
            flips[node].push((td, false));
            detections.push((node, SimTime(td)));
            detected_up[node] = false;
        };
        for ev in plan.sorted_events() {
            let node = ev.node();
            if node >= total_nodes {
                continue;
            }
            let te = ev.at().0;
            match ev {
                FaultEvent::Crash { .. } => {
                    // A deadline that expired strictly before (or at)
                    // this re-crash fires first; otherwise the restart
                    // of the down clock supersedes it.
                    if let Some(td) = pending[node].take() {
                        if td <= te {
                            fire(node, td, &mut flips, &mut detected_up);
                        }
                    }
                    if detected_up[node] {
                        pending[node] = Some(te.saturating_add(delay));
                    }
                }
                FaultEvent::Recover { .. } => {
                    // Recovery at the deadline itself beats the
                    // detector (`tr <= td` cancels).
                    if let Some(td) = pending[node].take() {
                        if td < te {
                            fire(node, td, &mut flips, &mut detected_up);
                        }
                    }
                    if !detected_up[node] {
                        detected_up[node] = true;
                        flips[node].push((te, true));
                    }
                }
                FaultEvent::Degrade { .. } | FaultEvent::LinkLoss { .. } => {
                    // Slowness is not failure; links are not nodes.
                }
            }
        }
        for (node, slot) in pending.iter_mut().enumerate() {
            if let Some(td) = slot.take() {
                fire(node, td, &mut flips, &mut detected_up);
            }
        }
        detections.sort_by_key(|&(n, at)| (at, n));
        DetectedTimeline { flips, detections }
    }

    /// Does the detector consider `node` up at `t`?
    pub fn is_up(&self, node: usize, t: SimTime) -> bool {
        let flips = &self.flips[node];
        let i = flips.partition_point(|&(at, _)| at <= t.0);
        i == 0 || flips[i - 1].1
    }

    /// The valid detections, `(node, at)` sorted by `(at, node)`.
    pub fn detections(&self) -> &[(usize, SimTime)] {
        &self.detections
    }
}

/// Per-directed-link packet-loss probability over time, precomputed
/// from the plan's `LinkLoss` events. Like [`DetectedTimeline`], static
/// data replaces a live mutation so every partition can sample loss at
/// send time without a shared cell.
#[derive(Debug, Clone)]
pub struct LossTimeline {
    total_nodes: usize,
    /// `from * total_nodes + to` → time-sorted `(at_ns, drop_prob)`
    /// steps; the rate in force at `t` is the last step with
    /// `at_ns <= t`. Same-instant duplicates keep plan insertion order,
    /// so the later entry wins — matching live replay.
    steps: Vec<Vec<(u64, f64)>>,
    lossless: bool,
}

impl LossTimeline {
    /// Build the timeline for `total_nodes` nodes.
    pub fn build(plan: &FaultPlan, total_nodes: usize) -> LossTimeline {
        let mut steps: Vec<Vec<(u64, f64)>> = vec![Vec::new(); total_nodes * total_nodes];
        let mut lossless = true;
        for ev in plan.sorted_events() {
            if let FaultEvent::LinkLoss {
                from,
                to,
                at,
                drop_prob,
            } = ev
            {
                if from >= total_nodes || to >= total_nodes {
                    continue;
                }
                steps[from * total_nodes + to].push((at.0, drop_prob));
                if drop_prob > 0.0 {
                    lossless = false;
                }
            }
        }
        LossTimeline {
            total_nodes,
            steps,
            lossless,
        }
    }

    /// The drop probability in force on `from → to` at `t`.
    pub fn prob(&self, from: usize, to: usize, t: SimTime) -> f64 {
        let steps = &self.steps[from * self.total_nodes + to];
        let i = steps.partition_point(|&(at, _)| at <= t.0);
        if i == 0 {
            0.0
        } else {
            steps[i - 1].1
        }
    }

    /// True when no link ever drops (senders can skip the loss draw
    /// entirely — byte-identical to a plan with no `LinkLoss` events).
    pub fn is_lossless(&self) -> bool {
        self.lossless
    }
}

/// The dense node index the fault layer uses: hosts first (`0..H`),
/// then ASUs (`H..H+D`) — the same order as
/// [`EmulationReport::nodes`](crate::EmulationReport::nodes).
pub fn node_index(cfg: &ClusterConfig, id: NodeId) -> usize {
    match id {
        NodeId::Host(i) => i,
        NodeId::Asu(i) => cfg.hosts + i,
    }
}

/// The node index of ASU `d` (convenience for building [`FaultPlan`]s).
pub fn asu_index(cfg: &ClusterConfig, d: usize) -> usize {
    node_index(cfg, NodeId::Asu(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indices_are_hosts_then_asus() {
        let cfg = ClusterConfig::era_2002(2, 3, 8.0);
        assert_eq!(node_index(&cfg, NodeId::Host(1)), 1);
        assert_eq!(node_index(&cfg, NodeId::Asu(0)), 2);
        assert_eq!(asu_index(&cfg, 2), 4);
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultSpec::none().is_active());
        let spec = FaultSpec::with_plan(FaultPlan::new().crash(0, SimTime(5))).failing_fast(true);
        assert!(spec.is_active());
        assert!(spec.fail_fast);
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn detection_lands_on_the_first_tick_past_the_timeout() {
        // 5 ms heartbeats, 15 ms timeout → detection at crash + 15 ms;
        // a 7 ms timeout rounds up to the 10 ms tick.
        let plan = FaultPlan::new().crash(1, SimTime(ms(2).as_nanos()));
        let t = DetectedTimeline::build(&plan, ms(5), ms(15), 3);
        assert_eq!(t.detections(), &[(1, SimTime(ms(17).as_nanos()))]);
        assert!(t.is_up(1, SimTime(ms(17).as_nanos() - 1)));
        assert!(!t.is_up(1, SimTime(ms(17).as_nanos())));
        assert!(t.is_up(0, SimTime(u64::MAX)), "unfaulted node stays up");

        let t = DetectedTimeline::build(&plan, ms(5), SimDuration::from_millis(7), 3);
        assert_eq!(t.detections(), &[(1, SimTime(ms(12).as_nanos()))]);
    }

    #[test]
    fn fast_recovery_cancels_detection_and_slow_recovery_flips_back() {
        // Recover inside the window (even exactly at the deadline):
        // never detected.
        let fast = FaultPlan::new()
            .crash(0, SimTime(0))
            .recover(0, SimTime(ms(15).as_nanos()));
        let t = DetectedTimeline::build(&fast, ms(5), ms(15), 1);
        assert!(t.detections().is_empty());
        assert!(t.is_up(0, SimTime(u64::MAX)));

        // Recover after the deadline: down in [td, tr), up from tr.
        let slow = FaultPlan::new()
            .crash(0, SimTime(0))
            .recover(0, SimTime(ms(40).as_nanos()));
        let t = DetectedTimeline::build(&slow, ms(5), ms(15), 1);
        assert_eq!(t.detections(), &[(0, SimTime(ms(15).as_nanos()))]);
        assert!(!t.is_up(0, SimTime(ms(20).as_nanos())));
        assert!(t.is_up(0, SimTime(ms(40).as_nanos())));
    }

    #[test]
    fn recrash_restarts_the_detection_clock() {
        // Second crash before the first deadline supersedes it; one
        // detection, anchored at the re-crash.
        let plan = FaultPlan::new()
            .crash(0, SimTime(0))
            .crash(0, SimTime(ms(10).as_nanos()));
        let t = DetectedTimeline::build(&plan, ms(5), ms(15), 1);
        assert_eq!(t.detections(), &[(0, SimTime(ms(25).as_nanos()))]);
        // Crash while already detected down adds nothing.
        let plan = FaultPlan::new()
            .crash(0, SimTime(0))
            .crash(0, SimTime(ms(20).as_nanos()));
        let t = DetectedTimeline::build(&plan, ms(5), ms(15), 1);
        assert_eq!(t.detections(), &[(0, SimTime(ms(15).as_nanos()))]);
    }

    #[test]
    fn loss_timeline_steps_and_restores() {
        let plan = FaultPlan::new()
            .link_loss(0, 1, SimTime(100), 0.5)
            .link_loss(0, 1, SimTime(200), 0.0);
        let t = LossTimeline::build(&plan, 2);
        assert!(!t.is_lossless());
        assert_eq!(t.prob(0, 1, SimTime(99)), 0.0);
        assert_eq!(t.prob(0, 1, SimTime(100)), 0.5);
        assert_eq!(t.prob(0, 1, SimTime(250)), 0.0, "zero restores the link");
        assert_eq!(t.prob(1, 0, SimTime(150)), 0.0, "links are directed");
        assert!(LossTimeline::build(&FaultPlan::new(), 2).is_lossless());
    }

    #[test]
    fn fault_stats_absorb_sums_fieldwise() {
        let mut a = FaultStats {
            retries: 1,
            nacks: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            retries: 10,
            detections: 3,
            ..FaultStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.retries, 11);
        assert_eq!(a.nacks, 2);
        assert_eq!(a.detections, 3);
        assert!(!a.is_quiet());
    }
}
