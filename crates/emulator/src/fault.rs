//! Fault injection surface of the emulator.
//!
//! A [`FaultSpec`] bundles a deterministic [`FaultPlan`] with the
//! recovery-protocol knobs: heartbeat cadence and detection timeout,
//! and the delivery retry [`BackoffPolicy`]. Passing
//! [`FaultSpec::none`] (or an empty plan) to
//! [`run_job_with_faults`](crate::runtime::run_job_with_faults) is
//! exactly [`run_job`](crate::runtime::run_job): no controller actor is
//! installed, routers use the all-up mask (identical RNG draws), and
//! the run is byte-identical to a fault-free one.
//!
//! What the layer models:
//!
//! - **Crash**: the node's instances stop (in-flight and queued work is
//!   lost with volatile state); packets arriving at the node bounce back
//!   to their senders as NACKs, which retry with exponential backoff
//!   against the live replicas the failure detector currently reports.
//! - **Detection latency is charged**: senders keep routing to a dead
//!   node until the heartbeat timeout expires; every such delivery pays
//!   a bounce round-trip plus backoff before failing over.
//! - **Fencing**: once a node is *detected* down, unflushed instances
//!   on it have EOS broadcast on their behalf so the pipeline drains
//!   instead of waiting forever.
//! - **Degrade**: the node keeps running with scaled CPU speed and disk
//!   rate — and is *not* detected as failed (no false positives from
//!   slowness alone).
//! - **LinkLoss**: each packet on the edge is dropped with the given
//!   probability (decided by the sender's deterministic RNG); the loss
//!   is surfaced as a NACK after a round trip and retried.

use crate::config::ClusterConfig;
use lmas_core::NodeId;
use lmas_sim::{BackoffPolicy, FaultPlan, SimDuration, SimTime};

/// Health of one emulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeHealth {
    /// Fully operational.
    Up,
    /// Running with scaled-down resources.
    Degraded {
        /// Remaining fraction of CPU speed, in `(0, 1]`.
        cpu_factor: f64,
        /// Remaining fraction of disk bandwidth, in `(0, 1]`.
        disk_factor: f64,
    },
    /// Crashed: processes nothing, bounces deliveries.
    Down,
}

/// Fault-injection parameters for one run.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The scheduled fault events (node indices per [`node_index`]).
    pub plan: FaultPlan,
    /// Heartbeat probe cadence of the failure detector.
    pub heartbeat_period: SimDuration,
    /// Silence threshold before a node is declared Down. Must be at
    /// least one period; detection lands on the first heartbeat tick at
    /// or after `crash + timeout`, so that latency is charged in
    /// virtual time (senders keep paying bounce round-trips until then).
    pub heartbeat_timeout: SimDuration,
    /// Retry schedule for failed deliveries.
    pub backoff: BackoffPolicy,
    /// When true, exhausting every live replica of a stage aborts the
    /// run with [`JobError::AllReplicasDown`](crate::JobError); when
    /// false the affected records are dropped (counted in
    /// [`FaultStats`]) and the run drains — degraded-mode operation for
    /// callers with an orchestration-level repair path.
    pub fail_fast: bool,
}

impl FaultSpec {
    /// No faults: behaves exactly like the fault-free runtime.
    pub fn none() -> FaultSpec {
        FaultSpec::with_plan(FaultPlan::new())
    }

    /// `plan` with 2002-era protocol defaults: 5 ms heartbeats, 15 ms
    /// detection timeout, [`BackoffPolicy::default_2002`] retries, and
    /// degraded-mode (non-fatal) delivery failures.
    pub fn with_plan(plan: FaultPlan) -> FaultSpec {
        FaultSpec {
            plan,
            heartbeat_period: SimDuration::from_millis(5),
            heartbeat_timeout: SimDuration::from_millis(15),
            backoff: BackoffPolicy::default_2002(),
            fail_fast: false,
        }
    }

    /// This spec with `fail_fast` set.
    pub fn failing_fast(mut self, yes: bool) -> FaultSpec {
        self.fail_fast = yes;
        self
    }

    /// Whether the fault machinery engages at all. An inactive spec
    /// leaves the runtime on its fault-free fast path.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
    }
}

/// An unrecoverable delivery failure that stopped the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatalFault {
    /// The destination stage whose replicas were all unreachable.
    pub stage: usize,
    /// Virtual time of the failure.
    pub at: SimTime,
}

/// Counters of fault-layer activity during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets re-sent after a NACK or drop.
    pub retries: u64,
    /// Deliveries bounced by a down node.
    pub nacks: u64,
    /// Packets dropped by lossy links.
    pub drops: u64,
    /// Records lost when a crash discarded an instance's queue and
    /// in-flight unit.
    pub lost_queued_records: u64,
    /// Records abandoned after the retry budget was exhausted (only in
    /// non-`fail_fast` mode).
    pub abandoned_records: u64,
    /// Instances that had EOS sent on their behalf after their node was
    /// detected down.
    pub fenced_instances: u64,
    /// Down-node detections by the heartbeat controller.
    pub detections: u64,
}

impl FaultStats {
    /// True when no fault-layer event fired (a clean run).
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// The dense node index the fault layer uses: hosts first (`0..H`),
/// then ASUs (`H..H+D`) — the same order as
/// [`EmulationReport::nodes`](crate::EmulationReport::nodes).
pub fn node_index(cfg: &ClusterConfig, id: NodeId) -> usize {
    match id {
        NodeId::Host(i) => i,
        NodeId::Asu(i) => cfg.hosts + i,
    }
}

/// The node index of ASU `d` (convenience for building [`FaultPlan`]s).
pub fn asu_index(cfg: &ClusterConfig, d: usize) -> usize {
    node_index(cfg, NodeId::Asu(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_indices_are_hosts_then_asus() {
        let cfg = ClusterConfig::era_2002(2, 3, 8.0);
        assert_eq!(node_index(&cfg, NodeId::Host(1)), 1);
        assert_eq!(node_index(&cfg, NodeId::Asu(0)), 2);
        assert_eq!(asu_index(&cfg, 2), 4);
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultSpec::none().is_active());
        let spec =
            FaultSpec::with_plan(FaultPlan::new().crash(0, SimTime(5))).failing_fast(true);
        assert!(spec.is_active());
        assert!(spec.fail_fast);
    }
}
