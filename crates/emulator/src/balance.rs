//! Feedback-driven runtime load balancing.
//!
//! The planner (`lmas-plan`) fixes placement and replication *offline*
//! from declared costs; this module closes the loop *online*. A
//! balancer actor inside the emulated cluster wakes on a virtual-time
//! period, samples per-instance queue depth (the backlog gauges the
//! routers already consult) and per-node CPU backlog, and — when the
//! observed imbalance exceeds a deadband — re-weights the replica
//! [`Router`](lmas_core::Router) through its
//! [`pick_routed`](lmas_core::Router::pick_routed) weight channel:
//! weights proportional to inverse backlog, floored at `min_weight` so
//! no live replica is ever starved outright. Down replicas stay the
//! fault layer's business: weights *compose* with the detected
//! [`UpMask`](lmas_core::UpMask), they do not replace it.
//!
//! Everything here is deterministic: sampling happens at virtual
//! instants, the weight function is a pure function of the samples, and
//! until the first reweight fires the routers see an empty weight slice
//! and behave byte-identically to an unbalanced run.

use lmas_sim::SimDuration;

/// Configuration of the runtime balancer. Disabled by default
/// ([`BalanceSpec::disabled`], period zero); enable per run with
/// [`ClusterConfig::with_balancer`](crate::ClusterConfig::with_balancer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceSpec {
    /// Sampling period in virtual time. Zero disables the balancer.
    pub period: SimDuration,
    /// Queue-depth spread (records, max − min across replicas) at or
    /// below which the balancer leaves weights alone. A generous
    /// deadband keeps a well-balanced run literally untouched — the
    /// weight channel never activates and routing draws are
    /// byte-identical to a balancer-free run.
    pub deadband: u64,
    /// CPU-backlog spread (max − min across replica nodes) at or below
    /// which the balancer leaves weights alone. Sized to several packet
    /// service times so ordinary arrival jitter between symmetric
    /// replicas never trips it.
    pub cpu_deadband: SimDuration,
    /// Weight floor for live replicas, in (0, 1]. Keeps every replica
    /// reachable so a transiently slow node can recover its share.
    pub min_weight: f64,
    /// Compat mode: sample backlog *live* at the balancer instead of
    /// through the snapshot protocol. The pre-snapshot semantics — the
    /// balancer actor reads the shared gauges and node clocks directly at
    /// its tick — which cannot run partitioned, so it forces the
    /// sequential engine (`par_fallback = "balancer"`). Default `false`
    /// (snapshot mode: instances self-report depth on the sampling grid,
    /// the balancer reweights from the previous window's reports, one
    /// window delayed, identical in both engines).
    pub live: bool,
}

impl BalanceSpec {
    /// Balancer off (zero period). The runtime spawns no actor and the
    /// run is byte-identical to one built before this module existed.
    pub const fn disabled() -> BalanceSpec {
        BalanceSpec {
            period: SimDuration::ZERO,
            deadband: 0,
            cpu_deadband: SimDuration::ZERO,
            min_weight: 0.0,
            live: false,
        }
    }

    /// Balance every `period` with defaults sized for packetized
    /// workloads: a two-packet (2×1024 record) queue deadband, a 20 ms
    /// CPU-backlog deadband, and a 5% weight floor.
    pub const fn every(period: SimDuration) -> BalanceSpec {
        BalanceSpec {
            period,
            deadband: 2048,
            cpu_deadband: SimDuration::from_millis(20),
            min_weight: 0.05,
            live: false,
        }
    }

    /// This spec with the given queue-depth deadband (records).
    pub const fn with_deadband(mut self, records: u64) -> BalanceSpec {
        self.deadband = records;
        self
    }

    /// This spec with the given CPU-backlog deadband.
    pub const fn with_cpu_deadband(mut self, spread: SimDuration) -> BalanceSpec {
        self.cpu_deadband = spread;
        self
    }

    /// This spec in live-read compat mode (see the `live` field):
    /// pre-snapshot semantics, sequential engine only.
    pub const fn live_sampling(mut self) -> BalanceSpec {
        self.live = true;
        self
    }

    /// Whether the balancer runs at all.
    pub fn is_active(&self) -> bool {
        self.period.as_nanos() > 0
    }
}

/// Minimum CPU-backlog spread (ns) that can ever trigger a reweight,
/// whatever the configured deadband; filters sub-microsecond
/// scheduling jitter.
const MIN_CPU_BACKLOG_NS: u64 = 1_000;

/// Compute new replica weights from observed backlog, or `None` when
/// the replicas are balanced within the deadbands (weights unchanged —
/// and if never changed, routing stays byte-identical to an unbalanced
/// run).
///
/// `depths[i]` is the queued records at replica `i`; `cpu_backlog_ns[i]`
/// is how far the replica's *node* CPU is committed past the sampling
/// instant. Each signal is normalized by its max across replicas, the
/// two are summed into a load in `[0, 2]`, and the weight is the
/// inverse `1 / (1 + load)` floored at `min_weight` and rescaled so the
/// least-loaded replica has weight 1.
pub fn reweight(
    depths: &[u64],
    cpu_backlog_ns: &[u64],
    deadband: u64,
    cpu_deadband_ns: u64,
    min_weight: f64,
) -> Option<Vec<f64>> {
    let n = depths.len();
    debug_assert_eq!(n, cpu_backlog_ns.len());
    if n < 2 {
        return None;
    }
    let (dmin, dmax) = min_max(depths);
    let (bmin, bmax) = min_max(cpu_backlog_ns);
    let depth_skew = dmax - dmin > deadband;
    let cpu_skew = bmax - bmin > cpu_deadband_ns.max(MIN_CPU_BACKLOG_NS);
    if !depth_skew && !cpu_skew {
        return None;
    }
    let load = |i: usize| {
        let d = if dmax > 0 { depths[i] as f64 / dmax as f64 } else { 0.0 };
        let b = if bmax > 0 {
            cpu_backlog_ns[i] as f64 / bmax as f64
        } else {
            0.0
        };
        d + b
    };
    let mut w: Vec<f64> = (0..n)
        .map(|i| (1.0 / (1.0 + load(i))).max(min_weight))
        .collect();
    // Rescale so the least-loaded replica carries full weight; the
    // floor only rises under the division (top ≤ 1), so it still holds.
    let top = w.iter().cloned().fold(f64::MIN, f64::max);
    if top > 0.0 {
        for x in &mut w {
            *x /= top;
        }
    }
    Some(w)
}

fn min_max(xs: &[u64]) -> (u64, u64) {
    xs.iter()
        .fold((u64::MAX, 0), |(lo, hi), &x| (lo.min(x), hi.max(x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spec_is_inert() {
        assert!(!BalanceSpec::disabled().is_active());
        assert!(BalanceSpec::every(SimDuration::from_millis(1)).is_active());
    }

    #[test]
    fn balanced_replicas_within_deadband_stay_untouched() {
        assert_eq!(reweight(&[100, 101, 99], &[0, 0, 0], 2048, 0, 0.05), None);
        // Single replica: nothing to weigh.
        assert_eq!(reweight(&[10_000], &[0], 0, 0, 0.05), None);
        // CPU spread inside its own deadband does not trigger either.
        assert_eq!(
            reweight(&[0, 0], &[15_000_000, 0], 0, 20_000_000, 0.05),
            None
        );
    }

    #[test]
    fn deep_queue_gets_down_weighted() {
        let w = reweight(&[8192, 0], &[0, 0], 2048, 0, 0.05).expect("skewed");
        assert!(w[0] < w[1], "backlogged replica must weigh less: {w:?}");
        assert!((w[1] - 1.0).abs() < 1e-12, "least loaded carries weight 1");
        assert!(w[0] >= 0.05, "floor holds");
    }

    #[test]
    fn cpu_backlog_alone_triggers_reweight() {
        let w = reweight(&[0, 0], &[10_000_000, 0], 0, 0, 0.05).expect("cpu skew");
        assert!(w[0] < w[1]);
        // Tiny jitter below the built-in floor does not.
        assert_eq!(reweight(&[0, 0], &[500, 0], 0, 0, 0.05), None);
    }

    #[test]
    fn weights_are_deterministic_and_floored() {
        let a = reweight(&[9000, 100, 0], &[5_000_000, 0, 0], 1024, 0, 0.25).unwrap();
        let b = reweight(&[9000, 100, 0], &[5_000_000, 0, 0], 1024, 0, 0.25).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.25..=1.0).contains(&x)), "{a:?}");
        // Worst replica (deep queue + cpu backlog) weighs the least.
        assert!(a[0] < a[1] && a[1] <= a[2]);
    }
}
