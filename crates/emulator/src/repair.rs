//! Background re-replication: durable-block replica tracking and repair.
//!
//! The emulator's durability layer models a set of `blocks` durable
//! blocks, each replicated on `target_replicas` distinct ASUs. Node
//! crashes destroy (or, in restore mode, take offline) the copies on
//! the crashed ASU; a background repair engine re-creates the missing
//! copies by streaming the block from a surviving holder to a fresh
//! destination, under a per-node repair-bandwidth cap. Repair traffic
//! is charged against the same disk and NIC resources foreground jobs
//! use, so re-replication *contends* with the application — the paper's
//! "network storage is a shared resource" premise applied to the
//! storage system's own maintenance traffic.
//!
//! The module is split the same way the fault layer is:
//!
//! - [`RepairEngine`] is a *pure* state machine: apply crash / recover /
//!   detect / completion events, get back the repair commands to issue.
//!   No virtual time, no actors — directly testable.
//! - [`repair_timeline`] precomputes the engine's event feed from the
//!   fault plan and the [`DetectedTimeline`], so the runtime's repair
//!   coordinator replays static data exactly like the fault controller
//!   does. That is what keeps repair runs on the partitioned engine:
//!   every input to the coordinator is either pre-seeded or arrives via
//!   lookahead-respecting messages.
//! - [`mean_field_trajectory`] integrates the mean-field ODE of Sun et
//!   al. (arXiv 1701.00335) adapted to this engine's semantics, giving
//!   the closed-form replica-distribution prediction the `repair_fleet`
//!   bench validates against.
//!
//! Repair triggering follows the failure detector: a crash enqueues its
//! blocks for repair only once the detector fires ([`DetectedTimeline`]
//! semantics — a node that recovers within the detection window is
//! never detected, which *is* the "cancellation on timely recovery"
//! path: in restore mode the copies come back and no repair was ever
//! queued). In non-restore mode a timely-recovered node rejoins blank,
//! so its rejoin announcement triggers the repairs instead.

use crate::fault::DetectedTimeline;
use lmas_sim::{DetRng, FaultEvent, FaultPlan, SimDuration, SimTime};

/// Parameters of the background re-replication engine.
///
/// Carried inside [`FaultSpec`](crate::FaultSpec); repair only engages
/// when the fault layer itself is active (there is nothing to repair
/// without a fault plan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairSpec {
    /// Number of durable blocks tracked by the engine.
    pub blocks: u64,
    /// Replication target `r`: every block starts with `r` copies on
    /// distinct ASUs and repair aims to keep it there.
    pub target_replicas: u32,
    /// Size of one block in bytes (the unit of repair transfer).
    pub block_bytes: u64,
    /// Per-node repair bandwidth cap in bytes/sec: each ASU *sources*
    /// repair reads no faster than this, regardless of how fast its
    /// disk and NIC could go. (The actual transfer still pays the disk
    /// and NIC models on top, so repair contends with foreground work.)
    pub repair_bandwidth: f64,
    /// Seed of the deterministic placement / source / destination
    /// choices (independent of the run's routing seed).
    pub placement_seed: u64,
    /// When true, a recovering node brings its durable copies back
    /// online (an outage, not data loss). When false — the default, and
    /// the regime the mean-field model describes — a crash destroys the
    /// node's copies and it rejoins empty.
    pub restore_on_recover: bool,
    /// Replica-histogram sampling cadence for the trajectory record;
    /// zero disables sampling (the final histogram is always reported).
    pub sample_every: SimDuration,
}

impl RepairSpec {
    /// A repair spec with the given fleet-model parameters, defaults
    /// elsewhere: fresh placement seed, crash-destroys-copies
    /// semantics, no trajectory sampling.
    pub fn new(blocks: u64, target_replicas: u32, block_bytes: u64, repair_bandwidth: f64) -> Self {
        RepairSpec {
            blocks,
            target_replicas,
            block_bytes,
            repair_bandwidth,
            placement_seed: 0x0B10,
            restore_on_recover: false,
            sample_every: SimDuration::ZERO,
        }
    }

    /// This spec sampling the replica histogram every `every`.
    pub fn with_sampling(mut self, every: SimDuration) -> Self {
        self.sample_every = every;
        self
    }

    /// This spec with recover-restores-copies semantics.
    pub fn with_restore(mut self, yes: bool) -> Self {
        self.restore_on_recover = yes;
        self
    }

    /// This spec with a different placement seed.
    pub fn with_placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self
    }

    /// Validate against a fleet of `asus` ASUs.
    pub fn validate(&self, asus: usize) -> Result<(), &'static str> {
        if self.blocks == 0 {
            return Err("repair spec tracks zero blocks");
        }
        if self.target_replicas == 0 {
            return Err("replication target must be at least 1");
        }
        if self.target_replicas as usize > asus {
            return Err("replication target exceeds the ASU count");
        }
        if self.block_bytes == 0 {
            return Err("block size must be positive");
        }
        if !(self.repair_bandwidth > 0.0 && self.repair_bandwidth.is_finite()) {
            return Err("repair bandwidth must be positive and finite");
        }
        Ok(())
    }

    /// The pacing interval between repair dispatches on one node:
    /// `block_bytes / repair_bandwidth`.
    pub fn pace(&self) -> SimDuration {
        SimDuration::from_nanos(
            ((self.block_bytes as f64 / self.repair_bandwidth) * 1e9).ceil() as u64,
        )
        .max(SimDuration::from_nanos(1))
    }
}

/// Counters of repair-engine activity during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Repair assignments created (including re-enqueues toward target
    /// and reassignments after a bounce).
    pub enqueued: u64,
    /// Repairs that landed a new copy.
    pub completed: u64,
    /// Assignments cancelled because a timely recovery restored the
    /// copies before the repair ran (restore mode only).
    pub cancelled: u64,
    /// Assignments reissued after bouncing off a down source or
    /// destination.
    pub reassigned: u64,
    /// Completed transfers whose result was discarded (stale assignment
    /// id, or the destination died before the copy could be credited).
    pub wasted: u64,
    /// Blocks whose available-copy count hit zero. In the default
    /// crash-destroys-copies mode this is permanent data loss; in
    /// restore mode it counts unavailability episodes.
    pub blocks_lost: u64,
    /// Total bytes of repair traffic credited as new copies.
    pub bytes_repaired: u64,
}

impl RepairStats {
    /// True when the repair layer never acted.
    pub fn is_quiet(&self) -> bool {
        *self == RepairStats::default()
    }

    /// Fold another partition's counters into this one.
    pub fn absorb(&mut self, other: &RepairStats) {
        self.enqueued += other.enqueued;
        self.completed += other.completed;
        self.cancelled += other.cancelled;
        self.reassigned += other.reassigned;
        self.wasted += other.wasted;
        self.blocks_lost += other.blocks_lost;
        self.bytes_repaired += other.bytes_repaired;
    }
}

/// One point of the replica-distribution trajectory: at virtual time
/// `at`, `hist[k]` blocks had `k` available copies (`k` clamped to the
/// replication target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSample {
    /// Sample time.
    pub at: SimTime,
    /// Blocks per available-copy count, `hist[0..=target]`.
    pub hist: Vec<u64>,
}

/// One repair transfer: stream `block` (`bytes` bytes) from the source
/// agent that receives this job to ASU `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairJob {
    /// Assignment id (stale completions are discarded by id).
    pub id: u64,
    /// The block being re-replicated.
    pub block: u64,
    /// Destination ASU ordinal.
    pub dest: u32,
    /// Transfer size.
    pub bytes: u64,
    /// The block is more than one copy below target: agents serve
    /// critical jobs ahead of routine ones (FIFO within each band), so
    /// a last-copy block never waits behind a backlog of single-loss
    /// repairs.
    pub critical: bool,
}

/// A command the engine asks the harness to carry out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairCmd {
    /// Queue `job` at the repair agent of source ASU `src`.
    Fetch {
        /// Source ASU ordinal (a current up holder of the block).
        src: u32,
        /// The transfer to perform.
        job: RepairJob,
    },
    /// Remove assignment `id` from source ASU `src`'s queue if it is
    /// still queued there (timely recovery made it moot).
    Cancel {
        /// Source ASU ordinal the job was queued at.
        src: u32,
        /// Assignment id to drop.
        id: u64,
    },
}

/// An input event for the repair coordinator, precomputed from the
/// fault plan (see [`repair_timeline`]). ASUs are identified by their
/// ordinal (`0..asus`), not the dense fault-layer node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairEv {
    /// ASU crashed (copies destroyed, or offline in restore mode).
    Crash(u32),
    /// ASU returned to service.
    Recover(u32),
    /// The failure detector declared the ASU down (repairs enqueue).
    Detect(u32),
}

/// The coordinator's static event feed: every crash/recover of an ASU
/// node in the plan plus every detector verdict on an ASU, in firing
/// order. Same-instant entries keep plan order first, detections after
/// — the phase order both engines replay identically.
pub fn repair_timeline(
    plan: &FaultPlan,
    detected: &DetectedTimeline,
    hosts: usize,
    asus: usize,
) -> Vec<(SimTime, RepairEv)> {
    let mut evs: Vec<(SimTime, RepairEv)> = Vec::new();
    for ev in plan.sorted_events() {
        let node = ev.node();
        if node < hosts || node >= hosts + asus {
            continue; // hosts hold no replicas; out-of-range is validated upstream
        }
        let asu = (node - hosts) as u32;
        match ev {
            FaultEvent::Crash { at, .. } => evs.push((at, RepairEv::Crash(asu))),
            FaultEvent::Recover { at, .. } => evs.push((at, RepairEv::Recover(asu))),
            FaultEvent::Degrade { .. } | FaultEvent::LinkLoss { .. } => {}
        }
    }
    for &(node, at) in detected.detections() {
        if node >= hosts && node < hosts + asus {
            evs.push((at, RepairEv::Detect((node - hosts) as u32)));
        }
    }
    evs.sort_by_key(|&(at, _)| at); // stable: plan order, then detections
    evs
}

/// One active repair assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Assignment {
    id: u64,
    src: u32,
    dest: u32,
}

/// The pure re-replication state machine.
///
/// Apply events in virtual-time order; every method returns the repair
/// commands to issue. Initial placement draws from one-shot [`DetRng`]
/// streams keyed by block; repair sources are picked least-loaded-first
/// over the live holders and destinations least-filled-first over the
/// live non-holders. Every decision is a pure function of the engine
/// state at the triggering event, so runs replay identically.
#[derive(Debug, Clone)]
pub struct RepairEngine {
    spec: RepairSpec,
    asus: usize,
    up: Vec<bool>,
    /// Per block: ASUs holding a copy (possibly down ones in restore
    /// mode; in destroy mode holders are always up).
    holders: Vec<Vec<u32>>,
    /// Per block: currently *available* (up-holder) copies.
    avail: Vec<u32>,
    assign: Vec<Option<Assignment>>,
    /// Per ASU: blocks holding a copy there (kept exact in both modes).
    copies_on: Vec<Vec<u64>>,
    /// Per ASU: blocks degraded by its crash, awaiting the repair
    /// trigger (detection, or rejoin in destroy mode).
    pending: Vec<Vec<u64>>,
    /// Per ASU: outstanding assignments sourced there. Source selection
    /// is least-loaded over the live holders, so a crash burst spreads
    /// across the survivors instead of piling onto whichever holder the
    /// dice favour — the fleet drains a burst at aggregate bandwidth.
    load: Vec<u32>,
    /// Per ASU: *planned* copies — held copies plus in-flight repair
    /// assignments targeting the node. Destination selection is
    /// least-filled over the live non-holders (see
    /// [`RepairEngine::choose_dest`]).
    fill: Vec<u64>,
    next_id: u64,
    hist: Vec<u64>,
    /// Activity counters (mirrored into the run metrics).
    pub stats: RepairStats,
}

impl RepairEngine {
    /// A fresh engine over `asus` ASUs: every block placed on
    /// `target_replicas` distinct ASUs by the placement seed.
    pub fn new(spec: RepairSpec, asus: usize) -> RepairEngine {
        debug_assert!(spec.validate(asus).is_ok(), "spec validated upstream");
        let r = spec.target_replicas;
        let mut holders = Vec::with_capacity(spec.blocks as usize);
        let mut copies_on: Vec<Vec<u64>> = vec![Vec::new(); asus];
        for b in 0..spec.blocks {
            let mut rng = DetRng::stream(spec.placement_seed, b);
            let mut hs: Vec<u32> = Vec::with_capacity(r as usize);
            while hs.len() < r as usize {
                let cand = rng.gen_index(asus) as u32;
                if !hs.contains(&cand) {
                    hs.push(cand);
                }
            }
            for &h in &hs {
                copies_on[h as usize].push(b);
            }
            holders.push(hs);
        }
        let mut hist = vec![0u64; r as usize + 1];
        hist[r as usize] = spec.blocks;
        let fill: Vec<u64> = copies_on.iter().map(|c| c.len() as u64).collect();
        RepairEngine {
            spec,
            asus,
            up: vec![true; asus],
            holders,
            avail: vec![r; spec.blocks as usize],
            assign: vec![None; spec.blocks as usize],
            copies_on,
            pending: vec![Vec::new(); asus],
            load: vec![0; asus],
            fill,
            next_id: 0,
            hist,
            stats: RepairStats::default(),
        }
    }

    /// Blocks per available-copy count, `hist[0..=target]`.
    pub fn hist(&self) -> &[u64] {
        &self.hist
    }

    /// The trajectory point for time `at`.
    pub fn sample(&self, at: SimTime) -> RepairSample {
        RepairSample {
            at,
            hist: self.hist.clone(),
        }
    }

    /// Apply one precomputed timeline event.
    pub fn on_event(&mut self, ev: RepairEv) -> Vec<RepairCmd> {
        match ev {
            RepairEv::Crash(asu) => self.on_crash(asu),
            RepairEv::Recover(asu) => self.on_recover(asu),
            RepairEv::Detect(asu) => self.on_detect(asu),
        }
    }

    fn set_avail(&mut self, b: u64, new: u32) {
        let t = self.spec.target_replicas as usize;
        let old = self.avail[b as usize];
        self.hist[(old as usize).min(t)] -= 1;
        self.hist[(new as usize).min(t)] += 1;
        if old > 0 && new == 0 {
            self.stats.blocks_lost += 1;
        }
        self.avail[b as usize] = new;
    }

    fn on_crash(&mut self, asu: u32) -> Vec<RepairCmd> {
        let a = asu as usize;
        if !self.up[a] {
            return Vec::new(); // double crash in the plan: idempotent
        }
        self.up[a] = false;
        let blocks: Vec<u64> = if self.spec.restore_on_recover {
            self.copies_on[a].clone()
        } else {
            std::mem::take(&mut self.copies_on[a])
        };
        if !self.spec.restore_on_recover {
            // The crash destroyed this node's copies; planned fill from
            // in-flight assignments targeting it stays until they
            // resolve (their completions are discarded as wasted).
            self.fill[a] -= blocks.len() as u64;
        }
        for &b in &blocks {
            if !self.spec.restore_on_recover {
                self.holders[b as usize].retain(|&h| h != asu);
            }
            let av = self.avail[b as usize] - 1;
            self.set_avail(b, av);
            // Repairs enqueue when the loss is *observed*: at the
            // detector's verdict, or at rejoin in destroy mode. An
            // assignment already covering the block keeps running (its
            // source was a different holder, or it will bounce).
            self.pending[a].push(b);
        }
        Vec::new()
    }

    fn on_recover(&mut self, asu: u32) -> Vec<RepairCmd> {
        let a = asu as usize;
        if self.up[a] {
            return Vec::new();
        }
        self.up[a] = true;
        let mut cmds = Vec::new();
        if self.spec.restore_on_recover {
            // The outage ends: copies come back online. Assignments the
            // recovery made moot are cancelled — this, together with
            // never-detected timely recoveries, is the cancellation
            // path. Pending triggers for this node's crash are void.
            self.pending[a].clear();
            for b in self.copies_on[a].clone() {
                let av = self.avail[b as usize] + 1;
                self.set_avail(b, av);
                let target = self.spec.target_replicas;
                if av >= target {
                    if let Some(asg) = self.assign[b as usize].take() {
                        self.load[asg.src as usize] -= 1;
                        self.fill[asg.dest as usize] -= 1;
                        self.stats.cancelled += 1;
                        cmds.push(RepairCmd::Cancel {
                            src: asg.src,
                            id: asg.id,
                        });
                    }
                } else if av > 0 && self.assign[b as usize].is_none() {
                    // A holder resurfaced for a block that had no live
                    // source left: repair can proceed again.
                    self.try_enqueue(b, &mut cmds);
                }
            }
        } else {
            // The node rejoins blank and announces itself; that report
            // triggers the repairs its crash caused — including for
            // crashes the detector never saw (timely recovery).
            for b in std::mem::take(&mut self.pending[a]) {
                self.try_enqueue(b, &mut cmds);
            }
        }
        cmds
    }

    fn on_detect(&mut self, asu: u32) -> Vec<RepairCmd> {
        let mut cmds = Vec::new();
        for b in std::mem::take(&mut self.pending[asu as usize]) {
            self.try_enqueue(b, &mut cmds);
        }
        cmds
    }

    /// A repair transfer finished (`ok`) or bounced off a down
    /// destination (`!ok`).
    pub fn on_done(&mut self, id: u64, block: u64, dest: u32, ok: bool) -> Vec<RepairCmd> {
        let mut cmds = Vec::new();
        let bi = block as usize;
        let Some(asg) = self.assign[bi].filter(|a| a.id == id) else {
            self.stats.wasted += 1; // stale: cancelled or reassigned meanwhile
            return cmds;
        };
        self.assign[bi] = None;
        self.load[asg.src as usize] -= 1;
        if !ok {
            // Destination was down at write time: pick a new one.
            self.fill[asg.dest as usize] -= 1;
            self.stats.reassigned += 1;
            self.try_enqueue(block, &mut cmds);
            return cmds;
        }
        let target = self.spec.target_replicas;
        if !self.up[dest as usize] || self.holders[bi].contains(&dest) || self.avail[bi] >= target {
            // The copy landed somewhere useless: the destination died
            // before it could be credited, or a recovery already
            // restored the block. The write is discarded (trimmed).
            self.fill[asg.dest as usize] -= 1;
            self.stats.wasted += 1;
        } else {
            self.holders[bi].push(dest);
            self.copies_on[dest as usize].push(block);
            let av = self.avail[bi] + 1;
            self.set_avail(block, av);
            self.stats.completed += 1;
            self.stats.bytes_repaired += self.spec.block_bytes;
        }
        if self.avail[bi] > 0 && self.avail[bi] < target {
            self.try_enqueue(block, &mut cmds); // next round toward target
        }
        cmds
    }

    /// A queued repair bounced off a down source agent.
    pub fn on_bounce(&mut self, id: u64, block: u64) -> Vec<RepairCmd> {
        let mut cmds = Vec::new();
        let bi = block as usize;
        let Some(asg) = self.assign[bi].filter(|a| a.id == id) else {
            return cmds; // stale bounce
        };
        self.assign[bi] = None;
        self.load[asg.src as usize] -= 1;
        self.fill[asg.dest as usize] -= 1;
        self.stats.reassigned += 1;
        self.try_enqueue(block, &mut cmds);
        cmds
    }

    /// Create an assignment for `block` if it is repairable: degraded,
    /// unassigned, with a live holder and a live non-holder to write to.
    fn try_enqueue(&mut self, block: u64, cmds: &mut Vec<RepairCmd>) {
        let bi = block as usize;
        let target = self.spec.target_replicas;
        if self.assign[bi].is_some() || self.avail[bi] == 0 || self.avail[bi] >= target {
            return;
        }
        // Least-loaded live holder, node index as the tiebreak: within
        // one trigger (a detected crash enqueueing a whole node's worth
        // of blocks) the loads rise as assignments are made, so the
        // burst round-robins across the survivors rather than queueing
        // hundreds of seconds behind one unlucky source.
        let src = self.holders[bi]
            .iter()
            .copied()
            .filter(|&h| self.up[h as usize])
            .min_by_key(|&h| (self.load[h as usize], h));
        debug_assert!(src.is_some(), "avail > 0 implies a live holder");
        let Some(src) = src else {
            return;
        };
        let Some(dest) = self.choose_dest(bi) else {
            return; // no live non-holder right now; a recovery re-triggers
        };
        let id = self.next_id;
        self.next_id += 1;
        self.assign[bi] = Some(Assignment { id, src, dest });
        self.load[src as usize] += 1;
        self.fill[dest as usize] += 1;
        self.stats.enqueued += 1;
        cmds.push(RepairCmd::Fetch {
            src,
            job: RepairJob {
                id,
                block,
                dest,
                bytes: self.spec.block_bytes,
                critical: self.avail[bi] + 1 < target,
            },
        });
    }

    /// The least-filled live ASU not holding the block (planned copies,
    /// node index as the tiebreak). Fill-aware placement keeps per-node
    /// copy counts tight around the mean under churn: without it, copies
    /// pile up on whichever nodes have been up longest, and one crash of
    /// such a node degrades a large fraction of the fleet's blocks at
    /// once — exactly the correlated bursts the mean-field model (which
    /// assumes independent per-copy loss) cannot express.
    fn choose_dest(&self, bi: usize) -> Option<u32> {
        (0..self.asus as u32)
            .filter(|&c| self.up[c as usize] && !self.holders[bi].contains(&c))
            .min_by_key(|&c| (self.fill[c as usize], c))
    }
}

/// Parameters of the mean-field replica-distribution model (Sun et al.,
/// arXiv 1701.00335, adapted to this engine's semantics: per-copy
/// exponential loss at the node failure rate, FIFO repair shared across
/// a fleet of rate-capped sources, crash-destroys-copies).
#[derive(Debug, Clone, Copy)]
pub struct MeanFieldParams {
    /// Fleet size (replica-holding nodes).
    pub nodes: usize,
    /// Replication target `r`.
    pub target: u32,
    /// Tracked blocks.
    pub blocks: u64,
    /// Mean time to failure of one node.
    pub mttf: SimDuration,
    /// Mean time to recover (sets the up-fraction of repair capacity).
    pub mttr: SimDuration,
    /// Time one node needs to repair one block
    /// (`block_bytes / repair_bandwidth`).
    pub block_repair: SimDuration,
}

/// Integrate the mean-field ODE and return `x[k]` (fraction of blocks
/// with `k` available copies, `k = 0..=target`) at each requested time.
///
/// Dynamics: a block with `k` copies loses one at rate `k/mttf` (each
/// copy sits on a node whose residual lifetime is exponential). All
/// degraded blocks (`1 <= k < r`) are in repair; the fleet completes
/// repairs at `min(queue, up_nodes) / block_repair` blocks per second
/// (each transfer is paced to `block_repair`; with more queued blocks
/// than nodes the fleet saturates at its aggregate cap), shared across
/// the queue in proportion to class mass (the FIFO fluid limit).
/// `x[0]` is absorbing — data loss. Detection latency is not modeled
/// (it is milliseconds against repair times of seconds and lifetimes
/// of days); the bench tolerance absorbs it.
pub fn mean_field_trajectory(p: &MeanFieldParams, times: &[SimTime]) -> Vec<Vec<f64>> {
    let r = p.target as usize;
    let mttf = p.mttf.as_nanos() as f64;
    let mttr = p.mttr.as_nanos() as f64;
    let up_frac = mttf / (mttf + mttr);
    let up_nodes = up_frac * p.nodes as f64;
    let block_repair = p.block_repair.as_nanos() as f64;
    let blocks = p.blocks as f64;

    let horizon = times.iter().map(|t| t.as_nanos()).max().unwrap_or(0) as f64;
    // Step small against both the failure and the repair time scale,
    // bounded so pathological parameters stay cheap; the flux clamp
    // below keeps the scheme stable even when a step overshoots.
    let mut dt = (mttf / 200.0).min(block_repair / 2.0).max(1.0);
    if horizon / dt > 2e6 {
        dt = horizon / 2e6;
    }

    let mut x = vec![0.0f64; r + 1];
    x[r] = 1.0;
    let mut out = Vec::with_capacity(times.len());
    let mut t = 0.0f64;
    let mut next = 0usize;
    let sorted_ok = times.windows(2).all(|w| w[0] <= w[1]);
    debug_assert!(sorted_ok, "sample times must be ascending");
    loop {
        while next < times.len() && (times[next].as_nanos() as f64) <= t {
            out.push(x.clone());
            next += 1;
        }
        if next >= times.len() {
            break;
        }
        let step = dt.min(times[next].as_nanos() as f64 - t).max(1.0);
        // Queue of degraded blocks (fractions 1..r-1 of the population).
        let q: f64 = x[1..r].iter().sum();
        let q_blocks = q * blocks;
        let rho = if q_blocks > 0.0 {
            (q_blocks.min(up_nodes) / (q_blocks * block_repair)).min(1.0 / block_repair)
        } else {
            0.0
        };
        // Desired per-state fluxes over `step`, then clamp so no state
        // goes negative (outflux at most the state's mass).
        let mut loss = vec![0.0f64; r + 1]; // k -> k-1
        let mut fix = vec![0.0f64; r + 1]; // k -> k+1
        for k in 1..=r {
            loss[k] = (k as f64) / mttf * x[k] * step;
        }
        for k in 1..r {
            fix[k] = rho * x[k] * step;
        }
        for k in 1..=r {
            let out_k = loss[k] + fix[k];
            if out_k > x[k] && out_k > 0.0 {
                let scale = x[k] / out_k;
                loss[k] *= scale;
                fix[k] *= scale;
            }
        }
        for k in 1..=r {
            x[k] -= loss[k] + fix[k];
            x[k - 1] += loss[k];
            if k < r {
                x[k + 1] += fix[k];
            }
        }
        t += step;
    }
    out
}

/// Mean available copies of a distribution `x[0..=r]`.
pub fn mean_copies(x: &[f64]) -> f64 {
    x.iter().enumerate().map(|(k, &v)| k as f64 * v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(blocks: u64, r: u32) -> RepairSpec {
        RepairSpec::new(blocks, r, 1 << 20, 8.0 * (1 << 20) as f64)
    }

    #[test]
    fn placement_is_seeded_and_distinct() {
        let e1 = RepairEngine::new(spec(64, 3), 8);
        let e2 = RepairEngine::new(spec(64, 3), 8);
        assert_eq!(e1.holders, e2.holders, "same seed, same placement");
        for hs in &e1.holders {
            assert_eq!(hs.len(), 3);
            let mut d = hs.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "copies on distinct ASUs");
            assert!(d.iter().all(|&h| (h as usize) < 8));
        }
        assert_eq!(e1.hist(), &[0, 0, 0, 64]);
        let e3 = RepairEngine::new(spec(64, 3).with_placement_seed(99), 8);
        assert_ne!(
            e1.holders, e3.holders,
            "different seed, different placement"
        );
    }

    #[test]
    fn crash_detect_repair_cycle_restores_target() {
        let mut e = RepairEngine::new(spec(32, 2), 6);
        assert!(e.on_crash(0).is_empty(), "repairs wait for the detector");
        let degraded: u64 = e.hist()[1];
        assert!(degraded > 0, "ASU 0 held copies");
        let mut cmds = e.on_detect(0);
        assert_eq!(cmds.len() as u64, degraded, "one fetch per degraded block");
        // Drive every transfer to completion (all other nodes are up).
        while let Some(RepairCmd::Fetch { src, job }) = cmds.pop() {
            assert_ne!(src, 0, "no repair sourced from the down node");
            assert_ne!(job.dest, 0, "no repair written to the down node");
            cmds.extend(e.on_done(job.id, job.block, job.dest, true));
        }
        assert_eq!(e.hist()[2], 32, "all blocks back at target");
        assert_eq!(e.stats.completed, degraded);
        assert_eq!(e.stats.blocks_lost, 0);
    }

    #[test]
    fn timely_recovery_cancels_queued_repairs_in_restore_mode() {
        let mut e = RepairEngine::new(spec(32, 2).with_restore(true), 6);
        e.on_crash(0);
        let fetches = e.on_detect(0);
        assert!(!fetches.is_empty());
        let cancels = e.on_recover(0);
        assert_eq!(
            cancels.len(),
            fetches.len(),
            "every queued repair cancelled"
        );
        assert!(cancels
            .iter()
            .all(|c| matches!(c, RepairCmd::Cancel { .. })));
        assert_eq!(e.stats.cancelled as usize, fetches.len());
        assert_eq!(e.hist()[2], 32, "copies restored");
        // The cancelled ids are stale if their transfers finish anyway.
        if let RepairCmd::Fetch { job, .. } = fetches[0] {
            e.on_done(job.id, job.block, job.dest, true);
            assert_eq!(e.stats.wasted, 1);
            assert_eq!(e.hist()[2], 32, "stale completion not credited");
        }
    }

    #[test]
    fn rejoin_triggers_repairs_in_destroy_mode() {
        // Crash + recover without a detection (timely recovery): the
        // node rejoins blank, and that rejoin triggers the repairs.
        let mut e = RepairEngine::new(spec(32, 2), 6);
        e.on_crash(0);
        let degraded = e.hist()[1];
        let cmds = e.on_recover(0);
        assert_eq!(cmds.len() as u64, degraded);
        assert!(
            e.on_detect(0).is_empty(),
            "nothing pending once rejoin handled it"
        );
    }

    #[test]
    fn losing_every_holder_counts_loss_once() {
        let mut e = RepairEngine::new(spec(16, 2), 4);
        for a in 0..4 {
            e.on_crash(a);
        }
        assert_eq!(e.hist()[0], 16);
        assert_eq!(e.stats.blocks_lost, 16);
        // Detection finds no live source: nothing is dispatched.
        for a in 0..4 {
            assert!(e.on_detect(a).is_empty());
        }
    }

    #[test]
    fn bounce_reassigns_to_a_live_source() {
        let mut e = RepairEngine::new(spec(32, 2), 6);
        e.on_crash(0);
        let cmds = e.on_detect(0);
        let RepairCmd::Fetch { src, job } = cmds[0] else {
            panic!("fetch")
        };
        // The chosen source crashes before serving the fetch; the agent
        // bounces the job back.
        e.on_crash(src);
        let re = e.on_bounce(job.id, job.block);
        match re.first() {
            Some(&RepairCmd::Fetch { src: s2, job: j2 }) => {
                assert_ne!(s2, src);
                assert_ne!(j2.id, job.id, "fresh assignment id");
            }
            None => {
                // Both holders down: block is lost (r=2), nothing to do.
                assert_eq!(e.avail[job.block as usize], 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.stats.reassigned >= 1);
    }

    #[test]
    fn mean_field_conserves_mass_and_decays_without_repair() {
        let p = MeanFieldParams {
            nodes: 16,
            target: 3,
            blocks: 1024,
            mttf: SimDuration::from_secs(3600),
            mttr: SimDuration::from_secs(60),
            // Repair far slower than the horizon: effectively none.
            block_repair: SimDuration::from_secs(1_000_000),
        };
        let times: Vec<SimTime> = (0..=10)
            .map(|i| SimTime::ZERO + SimDuration::from_secs(i * 3600))
            .collect();
        let xs = mean_field_trajectory(&p, &times);
        assert_eq!(xs.len(), times.len());
        assert_eq!(xs[0], vec![0.0, 0.0, 0.0, 1.0]);
        for x in &xs {
            let mass: f64 = x.iter().sum();
            assert!((mass - 1.0).abs() < 1e-9, "mass conserved: {mass}");
        }
        let m0 = mean_copies(&xs[0]);
        let m_end = mean_copies(xs.last().unwrap());
        assert!(m_end < m0, "copies decay without repair");
        // 10h at 1h MTTF with no repair: essentially everything lost.
        assert!(xs.last().unwrap()[0] > 0.9);
    }

    #[test]
    fn mean_field_fast_repair_holds_target() {
        let p = MeanFieldParams {
            nodes: 32,
            target: 3,
            blocks: 2048,
            mttf: SimDuration::from_secs(86_400),
            mttr: SimDuration::from_secs(600),
            block_repair: SimDuration::from_secs(4),
        };
        let times: Vec<SimTime> = (0..=8)
            .map(|i| SimTime::ZERO + SimDuration::from_secs(i * 86_400))
            .collect();
        let xs = mean_field_trajectory(&p, &times);
        let last = xs.last().unwrap();
        assert!(
            last[3] > 0.99,
            "fast repair keeps blocks at target: {last:?}"
        );
        assert!(last[0] < 1e-6, "no measurable loss: {last:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Fuzz a crash/detect/recover schedule against the engine and
        /// check the standing invariants: no command ever targets a
        /// down node, same inputs give identical command streams, and
        /// once every node is back up and all transfers are driven to
        /// completion every block is either lost or at target.
        #[test]
        fn engine_invariants_under_random_schedules(
            seed in any::<u64>(),
            asus in 5usize..10,
            blocks in 8u64..80,
            r in 2u32..4,
            ops in prop::collection::vec((0u8..3, 0u32..10), 1..40),
        ) {
            let sp = spec(blocks, r).with_placement_seed(seed);
            fn apply(
                cmds: Vec<RepairCmd>,
                inflight: &mut Vec<(u32, RepairJob)>,
                down: &[bool],
                log: &mut Vec<RepairCmd>,
            ) {
                for c in cmds {
                    log.push(c);
                    match c {
                        RepairCmd::Fetch { src, job } => {
                            prop_assert!(!down[src as usize], "fetch from down node");
                            prop_assert!(!down[job.dest as usize], "repair to down node");
                            inflight.push((src, job));
                        }
                        RepairCmd::Cancel { id, .. } => {
                            inflight.retain(|(_, j)| j.id != id);
                        }
                    }
                }
            }
            let run = |sp: RepairSpec| {
                let mut e = RepairEngine::new(sp, asus);
                let mut log: Vec<RepairCmd> = Vec::new();
                // Queued (not yet completed) fetches, as the agents
                // would hold them.
                let mut inflight: Vec<(u32, RepairJob)> = Vec::new();
                let mut down: Vec<bool> = vec![false; asus];
                for &(kind, n) in &ops {
                    let asu = n % asus as u32;
                    let cmds = match kind {
                        0 => {
                            if !down[asu as usize] {
                                down[asu as usize] = true;
                                // The crashed agent bounces its queue.
                                let mut cs = e.on_crash(asu);
                                let (dead, live): (Vec<_>, Vec<_>) =
                                    inflight.drain(..).partition(|&(s, _)| s == asu);
                                inflight = live;
                                for (_, j) in dead {
                                    cs.extend(e.on_bounce(j.id, j.block));
                                }
                                cs
                            } else {
                                Vec::new()
                            }
                        }
                        1 => {
                            down[asu as usize] = false;
                            e.on_recover(asu)
                        }
                        _ => e.on_detect(asu),
                    };
                    apply(cmds, &mut inflight, &down, &mut log);
                }
                // Bring the fleet up, flush pending triggers, then
                // drive every transfer to completion.
                for a in 0..asus as u32 {
                    if down[a as usize] {
                        down[a as usize] = false;
                        let cmds = e.on_recover(a);
                        apply(cmds, &mut inflight, &down, &mut log);
                    }
                    let cmds = e.on_detect(a);
                    apply(cmds, &mut inflight, &down, &mut log);
                }
                let mut guard = 0u32;
                while let Some((_, j)) = inflight.pop() {
                    let cmds = e.on_done(j.id, j.block, j.dest, true);
                    apply(cmds, &mut inflight, &down, &mut log);
                    guard += 1;
                    prop_assert!(guard < 100_000, "repair did not converge");
                }
                (e, log)
            };
            let (e1, log1) = run(sp);
            let (e2, log2) = run(sp);
            prop_assert_eq!(log1, log2, "same schedule, same command stream");
            prop_assert_eq!(e1.hist(), e2.hist());
            // Convergence: absent further faults every block is back at
            // target or unrecoverable (zero available copies).
            let h = e1.hist();
            let settled = h[0] + h[r as usize];
            prop_assert_eq!(settled, blocks, "hist {:?}", h);
        }
    }
}
