//! The dataflow runtime: compiles a (graph, placement) pair onto the
//! emulated cluster and executes it.
//!
//! Every functor instance becomes a simulation actor on its assigned
//! node. Functor code runs *for real* (records are genuinely
//! transformed); virtual time is charged per the declared cost bounds
//! through the node's FCFS CPU resource, so co-located instances contend
//! naturally. Packets crossing nodes serialize on the sender's NIC and
//! arrive one link latency later; source instances stream their input
//! from the local disk model; sink outputs are written back to the local
//! disk and captured for the caller.
//!
//! End-of-stream follows the classic dataflow protocol: an instance that
//! has consumed its input and all upstream EOS marks flushes its functor,
//! forwards the flush outputs, then broadcasts EOS downstream. Because
//! EOS rides the same FCFS NIC as data, it can never overtake packets
//! from the same sender.
//!
//! ## Fault-masked delivery
//!
//! [`run_job_with_faults`] layers a failure model on top (see
//! [`crate::fault`]): a controller replays the [`FaultSpec`]'s plan in
//! virtual time, flipping node health, and a precomputed
//! [`DetectedTimeline`] stands in for the heartbeat failure detector
//! (detections land on the first heartbeat tick past the timeout after
//! each crash). Delivery becomes optimistic-with-recovery: a packet
//! arriving at a down node bounces back as a NACK; the sender re-routes
//! it through [`Router::pick_available`] masked by the *detected* node
//! health, after a deterministic exponential backoff. Down nodes are
//! thus masked, not fatal — and with an empty plan the whole layer
//! vanishes: no controller actor, all-up masks (identical RNG draws),
//! byte-identical virtual times to [`run_job`].
//!
//! Because the detector and link-loss schedules are static timelines and
//! every remaining protocol message (NACK bounces, fence EOS, balancer
//! reports and weight updates) travels with at least the minimum
//! cross-node delay, faulted and balanced runs partition cleanly: the
//! parallel engine replays them byte-identically (see
//! [`EmulationReport::par_fallback`] for the few shapes that still
//! route sequentially).

use crate::balance;
use crate::config::ClusterConfig;
use crate::fault::{
    node_index, DetectedTimeline, FatalFault, FaultSpec, FaultStats, LossTimeline, NodeHealth,
};
use crate::metrics::{GaugeJournal, Metrics, SinkOutputs, StageGauge, StageQueueStats, StageUsage};
use crate::multi::{GateDecision, SchedEvent, SchedEventKind, SchedGate};
use crate::node::{nic_service, NodeRes};
use crate::repair::{
    repair_timeline, RepairCmd, RepairEngine, RepairEv, RepairJob, RepairSample, RepairStats,
};
use lmas_core::{
    Emit, FlowGraph, Functor, GraphError, NodeId, Packet, Placement, PlacementError, Record,
    Router, StageFactory, StageId, UpMask,
};
use lmas_sim::{
    run_partitioned, ActorId, BackoffPolicy, Ctx, DetRng, FaultEvent, LogHist, ParOps,
    PartitionWorker, RunOutcome, SimDuration, SimTime, Simulation, Trace,
};
use std::cell::{Ref, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A complete job: what to run, where, and on which data.
pub struct Job<R: Record> {
    /// The dataflow program.
    pub graph: FlowGraph<R>,
    /// Instance → node assignment.
    pub placement: Placement,
    /// External input per **source** stage instance: the packets stored
    /// on that instance's node, streamed in through the disk model.
    pub inputs: BTreeMap<(usize, usize), Vec<Packet<R>>>,
}

/// Why a job could not run (or could not finish).
#[derive(Debug)]
pub enum JobError {
    /// The graph failed validation.
    Graph(GraphError),
    /// The placement failed validation.
    Placement(PlacementError),
    /// Input supplied for an instance that is not a source.
    InputForNonSource {
        /// Stage index.
        stage: usize,
        /// Instance index.
        instance: usize,
    },
    /// A non-source stage has no incoming edge (it would never start).
    DisconnectedStage(StageId),
    /// An instance has no node assigned (surfaced as a typed error so a
    /// fault-injected run never aborts the process).
    UnplacedInstance {
        /// Stage index.
        stage: usize,
        /// Instance index.
        instance: usize,
    },
    /// A fault-plan event names a node outside the cluster.
    FaultPlanNode {
        /// The offending node index (valid indices are
        /// `0..hosts + asus`).
        node: usize,
    },
    /// The repair spec does not fit the cluster (see
    /// [`RepairSpec::validate`](crate::repair::RepairSpec::validate)).
    RepairConfig(&'static str),
    /// Every replica of a stage was unreachable and the retry budget was
    /// exhausted with [`FaultSpec::fail_fast`] set. Partial progress is
    /// reported so callers can decide how much work was lost.
    AllReplicasDown {
        /// The stage whose replicas were all down.
        stage: usize,
        /// Virtual time the run gave up.
        at: SimTime,
        /// Records processed before the failure.
        records_processed: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Graph(e) => write!(f, "graph error: {e}"),
            JobError::Placement(e) => write!(f, "placement error: {e}"),
            JobError::InputForNonSource { stage, instance } => {
                write!(
                    f,
                    "input supplied for non-source stage {stage} instance {instance}"
                )
            }
            JobError::DisconnectedStage(s) => {
                write!(f, "non-source stage {s:?} has no incoming edge")
            }
            JobError::UnplacedInstance { stage, instance } => {
                write!(f, "stage {stage} instance {instance} has no node assigned")
            }
            JobError::FaultPlanNode { node } => {
                write!(
                    f,
                    "fault plan names node {node}, which is not in the cluster"
                )
            }
            JobError::RepairConfig(why) => write!(f, "repair spec invalid: {why}"),
            JobError::AllReplicasDown {
                stage,
                at,
                records_processed,
            } => write!(
                f,
                "all replicas of stage {stage} down at t={}ns after {records_processed} records",
                at.as_nanos()
            ),
        }
    }
}

impl std::error::Error for JobError {}

impl From<GraphError> for JobError {
    fn from(e: GraphError) -> Self {
        JobError::Graph(e)
    }
}

impl From<PlacementError> for JobError {
    fn from(e: PlacementError) -> Self {
        JobError::Placement(e)
    }
}

/// Summary of one node after a run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Which node.
    pub id: NodeId,
    /// Mean CPU utilization over the run.
    pub mean_cpu_util: f64,
    /// Total CPU busy time.
    pub cpu_busy: SimDuration,
    /// CPU utilization per [`ClusterConfig::util_bin`] bin.
    pub cpu_series: Vec<f64>,
    /// Records processed on this node.
    pub records: u64,
    /// Disk counters: (reads, writes, bytes read, bytes written),
    /// aggregated across the node's spindles.
    pub disk: (u64, u64, u64, u64),
    /// Per-spindle transfer counters (one entry per disk; a single entry
    /// for unstriped nodes).
    pub per_disk: Vec<lmas_storage::BteStats>,
    /// Per-spindle media busy time, parallel to `per_disk`.
    pub per_disk_busy: Vec<SimDuration>,
    /// Buffer-pool counters (all zero when the pool is disabled).
    pub pool: lmas_storage::PoolStats,
    /// NIC busy time.
    pub nic_busy: SimDuration,
    /// Payload bytes this node put on the wire (frame overhead and
    /// zero-byte EOS marks excluded) — the measured shuffle volume a
    /// coded edge divides by `r`.
    pub nic_bytes_tx: u64,
    /// Peak functor-state bytes observed.
    pub peak_state_bytes: usize,
    /// Health at the end of the run.
    pub health: NodeHealth,
}

/// The result of running a [`Job`].
#[derive(Debug)]
pub struct EmulationReport<R: Record> {
    /// Job completion time (all CPUs drained, disks quiesced).
    pub makespan: SimDuration,
    /// Per-node summaries: hosts first, then ASUs.
    pub nodes: Vec<NodeReport>,
    /// Declared work per stage, with stage names.
    pub stage_work: Vec<(String, lmas_core::Work)>,
    /// Records entering each stage.
    pub stage_records_in: Vec<u64>,
    /// Resource attribution per stage (indexed by stage id): CPU grant
    /// busy/wait, disk bytes and read latency, NIC payload bytes and
    /// serialization time charged on the stage's behalf. Observational
    /// only — identical virtual times with or without it — and the
    /// basis for per-job accounting in multi-tenant runs.
    pub stage_usage: Vec<StageUsage>,
    /// Sink outputs keyed by `(stage, instance)`, `(port, packet)` pairs.
    pub sink_outputs: SinkOutputs<R>,
    /// Total records processed.
    pub records_processed: u64,
    /// Memory-contract violations (empty on a clean run).
    pub mem_violations: Vec<String>,
    /// Simulator events dispatched while running the job.
    pub dispatched: u64,
    /// Event trace of the run (empty unless
    /// [`ClusterConfig::trace_capacity`] asked for one).
    pub trace: Trace,
    /// Nodes still down when the run ended (hosts-then-ASUs ids).
    /// Orchestration layers use this to tell which sink outputs were
    /// lost with their node.
    pub down_nodes: Vec<NodeId>,
    /// Fault-layer activity counters (all zero on a fault-free run).
    pub fault: FaultStats,
    /// Time-weighted per-instance queue-depth statistics, one entry per
    /// stage (sources never queue, so theirs stay zero). This is the
    /// signal the runtime balancer samples.
    pub queue_stats: Vec<StageQueueStats>,
    /// Times the runtime balancer re-weighted replica routing (zero
    /// when disabled or never outside its deadband — in which case the
    /// run is byte-identical to a balancer-free one in virtual time).
    pub reweights: u64,
    /// Background re-replication counters (quiet unless the fault spec
    /// carried a [`RepairSpec`](crate::repair::RepairSpec)).
    pub repair: RepairStats,
    /// Replica-distribution trajectory: the blocks-per-copy-count
    /// histogram sampled every
    /// [`RepairSpec::sample_every`](crate::repair::RepairSpec::sample_every)
    /// (empty when sampling is off or repair never ran).
    pub repair_trajectory: Vec<RepairSample>,
    /// Final replica histogram, `hist[k]` = blocks with `k` available
    /// copies for `k = 0..=target` (empty when repair is off).
    pub replica_hist: Vec<u64>,
    /// Repair bytes *sourced* per ASU ordinal — the quantity the
    /// per-node repair-bandwidth cap paces (empty when repair is off).
    pub repair_src_bytes: Vec<u64>,
    /// Parallel-execution counters, present only when the partitioned
    /// engine ran the job ([`ClusterConfig::threads`] > 1 and the run was
    /// eligible). Everything *else* in the report is byte-identical
    /// either way; this field is the only trace the parallel kernel
    /// leaves.
    pub par: Option<ParRunStats>,
    /// Why a `threads > 1` run routed to the sequential engine anyway,
    /// or `None` when it ran partitioned (or never asked to). The
    /// reasons: `"backlog routing"` (a backlog-sensitive policy reads
    /// live cross-partition queue depths), `"zero latency"` (no minimum
    /// cross-node delay, hence no lookahead), `"fault plan"` (a
    /// `fail_fast` spec needs a global early stop), `"balancer"` (the
    /// live-read compat sampler). Always `None` at `threads == 1`.
    pub par_fallback: Option<&'static str>,
}

/// How the partitioned engine executed a run (see
/// [`ClusterConfig::with_threads`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParRunStats {
    /// Partitions (worker threads) actually used — `min(threads, hosts)`.
    pub partitions: usize,
    /// Conservative lookahead windows executed.
    pub windows: u64,
    /// Critical-path dispatches: `Σ_w max_p dispatches(p, w)`. The
    /// virtual-parallelism floor — `dispatched / critical_dispatched` is
    /// the model speedup an ideally parallel host could reach.
    pub critical_dispatched: u64,
    /// Cross-partition messages exchanged.
    pub remote_messages: u64,
    /// Log2 histogram of conservative window widths (virtual ns).
    /// Deterministic: same run, same histogram.
    pub window_width_hist: LogHist,
    /// Log2 histogram of per-window barrier waits (wall-clock ns).
    /// **Not** deterministic — scheduling noise; never diff it.
    pub barrier_wait_hist: LogHist,
}

impl<R: Record> EmulationReport<R> {
    /// The captured sink packets in `(stage, instance)` then emission
    /// order, borrowed — no records are copied. Packets arrive here by
    /// move from the sink actors, so the whole capture path is zero-copy.
    pub fn sink_packets(&self) -> impl Iterator<Item = &Packet<R>> {
        self.sink_outputs.values().flatten().map(|(_, p)| p)
    }

    /// All records captured at sinks, in `(stage, instance)` then
    /// emission order. Copies every record; prefer
    /// [`sink_packets`](EmulationReport::sink_packets) for read-only
    /// access or [`into_sink_records`](EmulationReport::into_sink_records)
    /// when the report is no longer needed.
    pub fn sink_records(&self) -> Vec<R> {
        self.sink_packets()
            .flat_map(|p| p.records().iter().cloned())
            .collect()
    }

    /// Consume the report into the flattened sink records. Packets whose
    /// buffers are uniquely owned (the usual case — sinks receive them by
    /// move) give up their records without copying.
    pub fn into_sink_records(self) -> Vec<R> {
        let total: usize = self
            .sink_outputs
            .values()
            .flatten()
            .map(|(_, p)| p.len())
            .sum();
        let mut out = Vec::with_capacity(total);
        for (_, p) in self.sink_outputs.into_values().flatten() {
            out.append(&mut p.into_records());
        }
        out
    }

    /// CPU utilization series of host `i`, or `None` when no such host
    /// was part of the run.
    pub fn try_host_cpu_series(&self, i: usize) -> Option<&[f64]> {
        self.nodes
            .iter()
            .find(|nr| nr.id == NodeId::Host(i))
            .map(|nr| nr.cpu_series.as_slice())
    }

    /// CPU utilization series of host `i`; empty when no such host was
    /// part of the run (see
    /// [`try_host_cpu_series`](EmulationReport::try_host_cpu_series) to
    /// distinguish that case).
    pub fn host_cpu_series(&self, i: usize) -> &[f64] {
        self.try_host_cpu_series(i).unwrap_or(&[])
    }
}

/// Routing/retry metadata carried with a delivery so a bounced packet
/// can find its way back to the sender and out again.
#[derive(Debug, Clone, Copy)]
struct DeliveryMeta {
    /// The sending instance actor (NACKs return here).
    sender: ActorId,
    /// The emission port (re-routing stays within the port's group).
    port: usize,
    /// Destination instance index (for backlog-gauge rollback).
    dest: usize,
    /// Delivery attempts so far (0 = first send).
    attempt: u32,
}

enum Msg<R: Record> {
    /// A data packet. `meta` is `Some` only under an active fault spec;
    /// fault-free runs carry `None` and skip all bounce bookkeeping.
    Arrive {
        p: Packet<R>,
        meta: Option<DeliveryMeta>,
    },
    /// A delivery bounced (down node or lossy link); returned to sender.
    Nack {
        p: Packet<R>,
        meta: DeliveryMeta,
    },
    /// Backoff expired: sender re-routes the packet.
    Retry {
        p: Packet<R>,
        meta: DeliveryMeta,
    },
    Eos,
    /// A CPU service window completed. The epoch stamp discards windows
    /// that belonged to a life of this instance before a crash.
    Work(u64),
    SourceNext,
    /// Controller → instance: your node crashed. Volatile state dies.
    Kill,
    /// Controller → instance: your node recovered (fresh state).
    Revive,
    /// Controller: apply plan event `i`.
    FaultStep(usize),
    /// Controller: the failure detector's (precomputed) verdict that
    /// `node` is down lands now — fence its unflushed instances.
    Detect(usize),
    /// Instance: sample own backlog and report it to the balancer.
    SampleTick,
    /// Instance → balancer: one backlog sample, taken on the sampling
    /// grid and shipped with a fixed delay (snapshot protocol).
    DepthReport {
        /// Reporting stage.
        stage: usize,
        /// Reporting replica within the stage.
        replica: usize,
        /// Queued records at the replica when sampled.
        depth: u64,
        /// Node CPU backlog (ns past the sampling instant).
        cpu_ns: u64,
    },
    /// Balancer → senders: new routing weights for a stage.
    WeightUpdate {
        /// Destination stage the weights apply to.
        stage: usize,
        /// One weight per replica.
        weights: Vec<f64>,
    },
    /// Balancer: a snapshot batch landed; recompute weights.
    BalanceTick,
    /// Repair coordinator: apply precomputed timeline entry `i` (a
    /// crash / recover / detect on a replica-holding ASU).
    RepairStep(usize),
    /// Coordinator → source agent: queue this transfer.
    RepairFetch(RepairJob),
    /// Coordinator → source agent: drop the queued assignment with this
    /// id, if it is still queued (a timely recovery made it moot).
    RepairCancel(u64),
    /// Repair agent self-message: dispatch the next queued transfer
    /// (the pacing chain).
    RepairNext,
    /// Source agent → destination agent: the block's bytes arrive.
    RepairWrite(RepairJob),
    /// Destination agent → coordinator: the transfer landed (`ok`) or
    /// bounced off a down destination (`!ok`).
    RepairDone {
        /// Assignment id.
        id: u64,
        /// Block repaired.
        block: u64,
        /// Destination ASU ordinal.
        dest: u32,
        /// Whether the copy was written.
        ok: bool,
    },
    /// Source agent → coordinator: a queued assignment bounced off this
    /// (now down) source; pick another.
    RepairBounce {
        /// Assignment id.
        id: u64,
        /// Block whose repair bounced.
        block: u64,
    },
    /// Coordinator: record one replica-histogram trajectory sample.
    RepairSampleTick,
    /// Scheduler: job `j` (of a multi-tenant run) reaches the admission
    /// gate at its arrival instant.
    JobArrive(usize),
    /// Sink instance → scheduler: one sink instance of job `j` flushed.
    /// The scheduler counts these to detect job completion.
    SinkFlushed(usize),
    /// Coordinator self-message: apply the completions buffered at this
    /// instant in canonical (assignment-id) order. Engine decisions
    /// depend on mutable load state, so same-instant completions must
    /// reach it in an arrival-order-independent sequence — the flush
    /// fires after every other message at the instant in both engines
    /// (seeds sort first; runtime sends carry strictly earlier send
    /// times because the control delay is positive).
    RepairFlush,
    /// Agent self-message: charge the destination writes that arrived
    /// at this instant through the disk in canonical (assignment-id)
    /// order. The disk ledger is FCFS, so same-instant arrivals from
    /// different sources must charge it in an arrival-order-independent
    /// sequence — like [`Msg::RepairFlush`], the sentinel fires after
    /// every other message at the instant in both engines.
    RepairWriteFlush,
}

enum Unit<R: Record> {
    Process(Packet<R>),
    Flush,
}

/// Read-ahead pipeline state of a source instance (present only when the
/// storage buffer pool is enabled; legacy sources stream unbounded).
///
/// The source may hold at most `window = read_ahead + 1` packets between
/// disk arrival and CPU completion: one being processed plus `read_ahead`
/// staged in pool frames. A frame is freed only when its packet's
/// processing unit *completes*, so `read_ahead == 0` is genuinely serial
/// demand paging (read, process, read, …) while `read_ahead >= 1`
/// overlaps the next packet's media time with this packet's CPU time.
#[derive(Debug)]
struct RaState {
    /// Staging window in packets (`read_ahead + 1`).
    window: usize,
    /// Packets arrived from disk whose processing has not completed.
    staged: usize,
    /// A disk read is in flight.
    pending: bool,
    /// EOS already sent (the input stream is exhausted).
    eos_sent: bool,
}

/// Per-instance fencing/flush flags shared between the instances and
/// the fault controller.
#[derive(Debug, Clone, Copy, Default)]
struct InstFlags {
    /// The instance flushed (its own EOS has been broadcast).
    flushed: bool,
    /// The controller broadcast EOS on this instance's behalf; it must
    /// never broadcast its own, even if revived.
    fenced: bool,
}

/// The backlog gauge a sender/receiver mutates: a shared live gauge in
/// sequential mode, or this partition's deferred journal in partitioned
/// mode (merged into the exact sequential gauge after the run — see
/// [`GaugeJournal::replay`]).
#[derive(Clone)]
enum GaugeHandle {
    Live(Rc<RefCell<StageGauge>>),
    Journal(Rc<RefCell<GaugeJournal>>),
}

impl GaugeHandle {
    fn add(&self, i: usize, records: u64, now: SimTime, key: (u64, u64)) {
        match self {
            GaugeHandle::Live(g) => g.borrow_mut().add(i, records, now),
            GaugeHandle::Journal(j) => j.borrow_mut().add(i, records, now, key),
        }
    }

    fn sub(&self, i: usize, records: u64, now: SimTime, key: (u64, u64)) {
        match self {
            GaugeHandle::Live(g) => g.borrow_mut().sub(i, records, now),
            GaugeHandle::Journal(j) => j.borrow_mut().sub(i, records, now, key),
        }
    }

    fn clear(&self, i: usize, now: SimTime, key: (u64, u64)) {
        match self {
            GaugeHandle::Live(g) => g.borrow_mut().clear(i, now),
            GaugeHandle::Journal(j) => j.borrow_mut().clear(i, now, key),
        }
    }

    /// Instantaneous per-instance depths. Journals return zeros: the
    /// partitioned runtime only engages for backlog-insensitive routing,
    /// so the values feed slice arithmetic, never a pick.
    fn depths(&self) -> Ref<'_, [u64]> {
        match self {
            GaugeHandle::Live(g) => Ref::map(g.borrow(), |g| g.depths()),
            GaugeHandle::Journal(j) => Ref::map(j.borrow(), |j| j.depths()),
        }
    }
}

struct Downstream<R: Record> {
    actors: Vec<ActorId>,
    /// Node of each destination instance. Identity only — the remote
    /// node *object* may live on another partition; everything delivery
    /// needs (same-node test, capacity) derives from the id and config.
    node_ids: Vec<NodeId>,
    /// Dense node index per destination instance (fault-mask lookups).
    node_idx: Vec<usize>,
    capacities: Vec<f64>,
    router: Router,
    gauge: GaugeHandle,
    /// Balancer-set routing weights for the destination stage; empty
    /// until (unless) the balancer's first reweight, so an untouched
    /// run draws identically to the weightless router path.
    weights: Rc<RefCell<Vec<f64>>>,
    /// Instances per port group (= replication for global scope).
    group_size: usize,
    /// Destination stage id (for `AllReplicasDown` reporting).
    dest_stage: usize,
    /// Coded broadcast-group size of this edge (1 = plain delivery).
    /// With `r > 1` the destinations partition into groups of `r`
    /// consecutive instances; every r-th remote packet ships as one
    /// multicast frame (one NIC charge at the frame's max payload) and
    /// the sender pays an `(r-1)`-fold replicated side-information disk
    /// write per packet.
    coded_r: usize,
    /// Per-group staging buffers of `(dest, packet)` awaiting a full
    /// coded frame (empty and untouched when `coded_r == 1`).
    coded_buf: Vec<Vec<(usize, Packet<R>)>>,
    _marker: std::marker::PhantomData<fn(R)>,
}

/// Fault-layer state held by each instance actor (present only when the
/// spec is active — `None` keeps the fault-free path allocation- and
/// draw-identical to the pre-fault runtime).
///
/// Detector verdicts and link-loss probabilities are *timelines* —
/// immutable, precomputed, shared by `Arc` — so an instance samples
/// them at any virtual instant without cross-partition state. The loss
/// and backoff draws come from a per-instance seed stream (derived from
/// the global instance index), identical however the run is
/// partitioned.
struct InstanceFault<R: Record> {
    detected: Arc<DetectedTimeline>,
    loss: Arc<LossTimeline>,
    flags: Rc<RefCell<Vec<InstFlags>>>,
    backoff: BackoffPolicy,
    fail_fast: bool,
    my_node: usize,
    my_global: usize,
    factory: StageFactory<R>,
    /// Private stream: loss draws and backoff jitter.
    rng: DetRng,
}

/// Snapshot-balancer sampling state of one watched instance: it samples
/// its own backlog on the `k·period` grid and ships the reading to the
/// balancer with a fixed delay, so the balancer reweights from the
/// *previous* window's snapshot in both engines.
struct SampleState {
    period: SimDuration,
    /// Shipping delay of a report: `period.max(ctl)` — uniform for all
    /// replicas, and at least the cross-partition lookahead.
    report_delay: SimDuration,
    balancer: ActorId,
    /// A `SampleTick` is in flight (guards against double-arming on
    /// revive).
    armed: bool,
}

struct InstanceActor<R: Record> {
    stage: usize,
    instance: usize,
    functor: Box<dyn Functor<R>>,
    node: Rc<RefCell<NodeRes>>,
    queue: VecDeque<Packet<R>>,
    pending: Option<Unit<R>>,
    eos_expected: usize,
    eos_seen: usize,
    flushed: bool,
    down: Option<Downstream<R>>,
    source_data: VecDeque<Packet<R>>,
    is_source: bool,
    /// False once a crash kills the source read chain.
    source_live: bool,
    /// Windowed read-ahead staging (pool-enabled sources only).
    ra: Option<RaState>,
    /// Globally unique instance tag: identifies this instance's output
    /// stream to the disk scheduler (runs never merge across tags).
    global_tag: u64,
    /// Incremented on crash; stale `Work` from a previous life is
    /// discarded by the stamp.
    epoch: u64,
    my_gauge: Option<(GaugeHandle, usize)>,
    metrics: Rc<RefCell<Metrics<R>>>,
    link_rate: f64,
    latency: SimDuration,
    /// Minimum cross-node delay (latency + NIC frame-overhead service):
    /// every control message (NACK bounce, fence EOS, weight update)
    /// travels with at least this much, which is exactly the parallel
    /// engine's lookahead.
    ctl: SimDuration,
    fault: Option<InstanceFault<R>>,
    /// Snapshot-balancer sampling (watched instances only).
    sample: Option<SampleState>,
    /// Multi-tenant runs only: `(scheduler actor, owning job)` of a
    /// *sink* instance, which notifies the scheduler when it flushes.
    /// `None` everywhere else — single-job runs carry no scheduler.
    sched: Option<(ActorId, usize)>,
}

impl<R: Record> InstanceActor<R> {
    fn is_down(&self) -> bool {
        self.fault.is_some() && self.node.borrow().is_down()
    }

    fn is_fenced(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|f| f.flags.borrow()[f.my_global].fenced)
    }

    fn try_start(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if self.pending.is_some() || self.is_down() {
            return;
        }
        if let Some(p) = self.queue.pop_front() {
            if let Some((gauge, idx)) = &self.my_gauge {
                gauge.sub(*idx, p.len() as u64, ctx.now(), par_key(ctx));
            }
            let cost = self.functor.cost(&p);
            {
                let mut m = self.metrics.borrow_mut();
                m.stage_work[self.stage] += cost;
                m.stage_records_in[self.stage] += p.len() as u64;
            }
            let grant = self.node.borrow_mut().charge_cpu(ctx.now(), cost);
            {
                let mut m = self.metrics.borrow_mut();
                let u = &mut m.stage_usage[self.stage];
                u.cpu_busy_ns += grant.end.since(grant.start).as_nanos();
                u.cpu_wait_ns += grant.queue_delay(ctx.now()).as_nanos();
            }
            self.pending = Some(Unit::Process(p));
            ctx.send_at(ctx.me(), grant.end, Msg::Work(self.epoch));
        } else if self.eos_seen >= self.eos_expected && !self.flushed && !self.is_fenced() {
            let cost = self.functor.flush_cost();
            self.metrics.borrow_mut().stage_work[self.stage] += cost;
            let grant = self.node.borrow_mut().charge_cpu(ctx.now(), cost);
            {
                let mut m = self.metrics.borrow_mut();
                let u = &mut m.stage_usage[self.stage];
                u.cpu_busy_ns += grant.end.since(grant.start).as_nanos();
                u.cpu_wait_ns += grant.queue_delay(ctx.now()).as_nanos();
            }
            self.pending = Some(Unit::Flush);
            ctx.send_at(ctx.me(), grant.end, Msg::Work(self.epoch));
        }
    }

    fn complete_unit(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let Some(unit) = self.pending.take() else {
            // A stale Work stamp from before a crash (already filtered by
            // the epoch check) or a unit discarded by Kill.
            debug_assert!(self.fault.is_some(), "Work without a pending unit");
            return;
        };
        let mut emit = Emit::new(self.functor.out_ports());
        let mut just_flushed = false;
        match unit {
            Unit::Process(p) => {
                // The packet's staging frame frees only now, at CPU
                // completion — read-ahead depth really bounds memory.
                if let Some(ra) = &mut self.ra {
                    ra.staged = ra.staged.saturating_sub(1);
                }
                let n = p.len() as u64;
                self.node.borrow_mut().note_records(n);
                let (stage, instance) = (self.stage, self.instance);
                let key = par_key(ctx);
                let mut m = self.metrics.borrow_mut();
                m.records_processed += n;
                m.note_activity(ctx.now());
                m.trace.record_with_key(ctx.now(), key, || {
                    (format!("s{stage}.i{instance}"), format!("proc {n} recs"))
                });
                drop(m);
                self.functor.process(p, &mut emit);
            }
            Unit::Flush => {
                self.functor.flush(&mut emit);
                self.flushed = true;
                just_flushed = true;
                let (stage, instance) = (self.stage, self.instance);
                let key = par_key(ctx);
                let mut m = self.metrics.borrow_mut();
                m.note_activity(ctx.now());
                m.trace.record_with_key(ctx.now(), key, || {
                    (format!("s{stage}.i{instance}"), "flush")
                });
                drop(m);
                if let Some(f) = &self.fault {
                    f.flags.borrow_mut()[f.my_global].flushed = true;
                }
            }
        }
        let state = self.functor.state_bytes();
        {
            let mut node = self.node.borrow_mut();
            node.note_state_bytes(state);
            if state > node.mem_bytes {
                let id = node.id;
                drop(node);
                self.metrics.borrow_mut().note_violation_keyed(
                    ctx.now(),
                    par_key(ctx),
                    format!(
                        "stage {} instance {} exceeds {} memory: {} bytes of functor state",
                        self.stage, self.instance, id, state
                    ),
                );
            }
        }
        self.route_outputs(ctx, emit.take());
        if just_flushed {
            self.broadcast_eos(ctx);
            // A multi-tenant sink reports its flush to the scheduler at
            // the flush instant (sink writes were charged above, so the
            // job's disk traffic is already accounted). Scheduler runs
            // are sequential-only; a zero-delay control send is safe.
            if let Some((sched, job)) = self.sched {
                ctx.send_now(sched, Msg::SinkFlushed(job));
            }
        }
        self.try_start(ctx);
        if self.ra.is_some() {
            // A frame freed: see whether the read pipeline can refill.
            self.source_next(ctx);
        }
    }

    fn route_outputs(&mut self, ctx: &mut Ctx<'_, Msg<R>>, outputs: Vec<(usize, Packet<R>)>) {
        if self.down.is_some() {
            for (port, p) in outputs {
                self.route_packet(ctx, port, p, 0);
            }
        } else {
            // Sink: write results to the local disk (staged through the
            // scheduler/pool when the substrate is on) and capture them.
            let now = ctx.now();
            let mut node = self.node.borrow_mut();
            let mut m = self.metrics.borrow_mut();
            for (port, p) in outputs {
                let bytes = p.bytes() as u64;
                node.disk_write_sink(now, self.global_tag, bytes);
                m.note_activity(now);
                m.stage_usage[self.stage].disk_write_bytes += bytes;
                m.sink_outputs
                    .entry((self.stage, self.instance))
                    .or_default()
                    .push((port, p));
            }
        }
    }

    /// Route one packet downstream. `attempt` is 0 for fresh emissions
    /// and counts prior failed deliveries for retries.
    fn route_packet(&mut self, ctx: &mut Ctx<'_, Msg<R>>, port: usize, p: Packet<R>, attempt: u32) {
        // Invariant, not user input: emissions only route here when the
        // stage has an out edge (sink outputs go to disk in `emit`), and
        // the graph is validated before any actor exists. A miss would
        // be a runtime bug; degrade by dropping the packet rather than
        // aborting a run that is otherwise healthy.
        let Some(d) = self.down.as_mut() else {
            debug_assert!(false, "route_packet needs a downstream");
            return;
        };
        // A port is confined to its instance group; the policy picks
        // within it (group == whole stage for Global).
        let groups = d.actors.len() / d.group_size;
        let base = (port % groups) * d.group_size;
        let picked = {
            let now = ctx.now();
            let up = match &self.fault {
                Some(f) => UpMask::from_fn(d.group_size, |j| {
                    f.detected.is_up(d.node_idx[base + j], now)
                }),
                None => UpMask::All,
            };
            let backlog = d.gauge.depths();
            let weights = d.weights.borrow();
            // Empty until the balancer's first reweight: `pick_routed`
            // then takes the exact `pick_available` path (same draws).
            let wslice: &[f64] = if weights.is_empty() {
                &[]
            } else {
                &weights[base..base + d.group_size]
            };
            d.router.pick_routed(
                d.group_size,
                port / groups,
                &backlog[base..base + d.group_size],
                &d.capacities[base..base + d.group_size],
                wslice,
                &up,
            )
        };
        let Some(rel) = picked else {
            // No replica is (detected) live. Hold the packet through the
            // backoff schedule — a recovery may land — then give up.
            let meta = DeliveryMeta {
                sender: ctx.me(),
                port,
                dest: usize::MAX,
                attempt,
            };
            self.redeliver(ctx, p, meta);
            return;
        };
        let dest = base + rel;
        // Optimistic backlog charge; a NACK rolls it back.
        d.gauge.add(dest, p.len() as u64, ctx.now(), par_key(ctx));
        // Coded delivery (fault-free runs only: coded frames have no
        // per-packet NACK identity). Same-node packets are free as in
        // the plain path; remote packets pay the (r-1)-way replicated
        // side-information write immediately, then wait in the group's
        // staging buffer until r packets form a frame — one NIC charge
        // at the frame's widest payload, all members delivered at the
        // grant.
        if d.coded_r > 1 && self.fault.is_none() {
            let now = ctx.now();
            let my_id = self.node.borrow().id;
            if d.node_ids[dest] == my_id {
                ctx.send_at(d.actors[dest], now, Msg::Arrive { p, meta: None });
                return;
            }
            let r = d.coded_r;
            self.node
                .borrow_mut()
                .disk_write(now, (r as u64 - 1) * p.bytes() as u64);
            self.metrics.borrow_mut().stage_usage[self.stage].disk_write_bytes +=
                (r as u64 - 1) * p.bytes() as u64;
            let group = dest / r;
            d.coded_buf[group].push((dest, p));
            if d.coded_buf[group].len() == r {
                let frame = d.coded_buf[group]
                    .iter()
                    .map(|(_, q)| q.bytes() as u64)
                    .max()
                    .unwrap_or(0);
                let grant = self.node.borrow_mut().charge_nic(now, frame, self.link_rate);
                {
                    let mut m = self.metrics.borrow_mut();
                    let u = &mut m.stage_usage[self.stage];
                    u.nic_bytes += frame;
                    u.nic_busy_ns += grant.end.since(grant.start).as_nanos();
                }
                let at = grant.end + self.latency;
                for (di, q) in d.coded_buf[group].drain(..) {
                    ctx.send_at(d.actors[di], at, Msg::Arrive { p: q, meta: None });
                }
            }
            return;
        }
        let (deliver_at, nic_busy) = delivery_time(
            ctx.now(),
            &self.node,
            d.node_ids[dest],
            p.bytes() as u64,
            self.link_rate,
            self.latency,
        );
        if let Some(busy) = nic_busy {
            let mut m = self.metrics.borrow_mut();
            let u = &mut m.stage_usage[self.stage];
            u.nic_bytes += p.bytes() as u64;
            u.nic_busy_ns += busy.as_nanos();
        }
        let to_actor = d.actors[dest];
        match &mut self.fault {
            None => {
                ctx.send_at(to_actor, deliver_at, Msg::Arrive { p, meta: None });
            }
            Some(f) => {
                let meta = DeliveryMeta {
                    sender: ctx.me(),
                    port,
                    dest,
                    attempt,
                };
                let prob = f.loss.prob(f.my_node, d.node_idx[dest], ctx.now());
                if prob > 0.0 && f.rng.gen_f64() < prob {
                    // The frame left the NIC but never arrived; the loss
                    // surfaces as a NACK one control delay later (the
                    // receiver's link-level reject), and the retry path
                    // takes over.
                    self.metrics.borrow_mut().fault.drops += 1;
                    ctx.send_at(ctx.me(), deliver_at + self.ctl, Msg::Nack { p, meta });
                } else {
                    ctx.send_at(
                        to_actor,
                        deliver_at,
                        Msg::Arrive {
                            p,
                            meta: Some(meta),
                        },
                    );
                }
            }
        }
    }

    /// Schedule a retry for a failed delivery, or give up when the
    /// attempt budget is exhausted.
    fn redeliver(&mut self, ctx: &mut Ctx<'_, Msg<R>>, p: Packet<R>, mut meta: DeliveryMeta) {
        if self.is_down() {
            // The sender itself died while the bounce was in flight; the
            // packet dies with it (a repair pass recovers the records).
            self.metrics.borrow_mut().fault.lost_queued_records += p.len() as u64;
            return;
        }
        // Invariant, not user input: NACKs and retries carry delivery
        // metadata, which is only ever attached under an active fault
        // spec — the same condition that populates `self.fault`. If the
        // pairing ever broke, the honest degradation is the one the
        // fault layer already defines for undeliverable packets: count
        // the records lost and move on.
        let Some(f) = self.fault.as_mut() else {
            debug_assert!(false, "redeliver requires fault mode");
            self.metrics.borrow_mut().fault.lost_queued_records += p.len() as u64;
            return;
        };
        meta.attempt += 1;
        match f.backoff.delay(meta.attempt, &mut f.rng) {
            Some(delay) => {
                self.metrics.borrow_mut().fault.retries += 1;
                ctx.send(ctx.me(), delay, Msg::Retry { p, meta });
            }
            None => {
                let fail_fast = f.fail_fast;
                let stage = self
                    .down
                    .as_ref()
                    .map(|d| d.dest_stage)
                    .unwrap_or(self.stage);
                let mut m = self.metrics.borrow_mut();
                m.fault.abandoned_records += p.len() as u64;
                if fail_fast && m.fatal.is_none() {
                    m.fatal = Some(FatalFault {
                        stage,
                        at: ctx.now(),
                    });
                    drop(m);
                    ctx.request_stop();
                }
            }
        }
    }

    /// Ship every partially-filled coded frame (end of stream: no more
    /// packets will complete them). Charged before the EOS batch so the
    /// FCFS NIC keeps data ahead of the EOS marks.
    fn flush_coded(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let Some(d) = self.down.as_mut() else { return };
        if d.coded_r <= 1 {
            return;
        }
        let now = ctx.now();
        for group in 0..d.coded_buf.len() {
            if d.coded_buf[group].is_empty() {
                continue;
            }
            let frame = d.coded_buf[group]
                .iter()
                .map(|(_, q)| q.bytes() as u64)
                .max()
                .unwrap_or(0);
            let grant = self.node.borrow_mut().charge_nic(now, frame, self.link_rate);
            {
                let mut m = self.metrics.borrow_mut();
                let u = &mut m.stage_usage[self.stage];
                u.nic_bytes += frame;
                u.nic_busy_ns += grant.end.since(grant.start).as_nanos();
            }
            let at = grant.end + self.latency;
            for (di, q) in d.coded_buf[group].drain(..) {
                ctx.send_at(d.actors[di], at, Msg::Arrive { p: q, meta: None });
            }
        }
    }

    fn broadcast_eos(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if self.is_fenced() {
            // The controller already spoke for this instance.
            return;
        }
        self.flush_coded(ctx);
        if let Some(d) = &mut self.down {
            // EOS rides the NIC (zero payload) so it stays behind data.
            // Every remote mark serializes zero bytes, so one batched NIC
            // charge stands in for the per-destination charges: k
            // zero-length grants at the same instant share one window and
            // leave `free_at` where a lone charge would (the ledger sees
            // no busy time either way).
            let now = ctx.now();
            let my_id = self.node.borrow().id;
            let remote = d.node_ids.iter().filter(|&&id| id != my_id).count();
            let deliver_remote = if remote > 0 {
                let g =
                    self.node
                        .borrow_mut()
                        .charge_nic_batch(now, 0, self.link_rate, remote as u64);
                g.end + self.latency
            } else {
                now
            };
            let (stage, instance, fanout) = (self.stage, self.instance, d.actors.len());
            let key = par_key(ctx);
            self.metrics
                .borrow_mut()
                .trace
                .record_with_key(now, key, || {
                    (format!("s{stage}.i{instance}"), format!("eos -> {fanout}"))
                });
            for i in 0..d.actors.len() {
                let at = if d.node_ids[i] == my_id {
                    now
                } else {
                    deliver_remote
                };
                ctx.send_at(d.actors[i], at, Msg::Eos);
            }
        }
    }

    fn source_next(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if !self.source_live {
            return;
        }
        if let Some(ra) = &mut self.ra {
            // Windowed streaming: at most one read in flight, at most
            // `window` packets staged between disk arrival and CPU
            // completion. Called again on every arrival and completion,
            // so the pipeline refills as frames free up.
            if ra.pending || ra.staged >= ra.window {
                return;
            }
            if let Some(p) = self.source_data.pop_front() {
                ra.pending = true;
                let ready = self
                    .node
                    .borrow_mut()
                    .disk_read(ctx.now(), p.bytes() as u64);
                {
                    let mut m = self.metrics.borrow_mut();
                    m.note_activity(ready);
                    let u = &mut m.stage_usage[self.stage];
                    u.disk_read_bytes += p.bytes() as u64;
                    u.disk_wait_ns += ready.saturating_since(ctx.now()).as_nanos();
                }
                ctx.send_at(ctx.me(), ready, Msg::Arrive { p, meta: None });
            } else if !ra.eos_sent {
                ra.eos_sent = true;
                ctx.send_at(ctx.me(), ctx.now(), Msg::Eos);
            }
            return;
        }
        if let Some(p) = self.source_data.pop_front() {
            let ready = self
                .node
                .borrow_mut()
                .disk_read(ctx.now(), p.bytes() as u64);
            {
                let mut m = self.metrics.borrow_mut();
                m.note_activity(ready);
                let u = &mut m.stage_usage[self.stage];
                u.disk_read_bytes += p.bytes() as u64;
                u.disk_wait_ns += ready.saturating_since(ctx.now()).as_nanos();
            }
            ctx.send_at(ctx.me(), ready, Msg::Arrive { p, meta: None });
            ctx.send_at(ctx.me(), ready, Msg::SourceNext);
        } else {
            ctx.send_at(ctx.me(), ctx.now(), Msg::Eos);
        }
    }

    /// The node crashed: volatile state (queue, in-flight unit, functor
    /// state) is lost; the functor is rebuilt from its factory so a
    /// revived instance restarts clean.
    fn kill(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        debug_assert!(self.fault.is_some(), "Kill outside fault mode");
        self.epoch += 1;
        let mut lost = 0u64;
        if let Some(Unit::Process(p)) = self.pending.take() {
            lost += p.len() as u64;
        }
        for p in self.queue.drain(..) {
            lost += p.len() as u64;
        }
        if let Some((gauge, idx)) = &self.my_gauge {
            gauge.clear(*idx, ctx.now(), par_key(ctx));
        }
        self.source_live = false;
        if let Some(ra) = &mut self.ra {
            // Staged packets died with the node; the read chain is dead
            // (source_live above), so the pipeline never refills.
            ra.staged = 0;
            ra.pending = false;
        }
        if let Some(f) = &self.fault {
            self.functor = (f.factory)(self.instance);
        }
        let (stage, instance) = (self.stage, self.instance);
        let key = par_key(ctx);
        let mut m = self.metrics.borrow_mut();
        m.fault.lost_queued_records += lost;
        m.trace.record_with_key(ctx.now(), key, || {
            (
                format!("s{stage}.i{instance}"),
                format!("killed, lost {lost} recs"),
            )
        });
    }

    /// `SampleTick`: sample own backlog and ship a `DepthReport` to the
    /// balancer; re-arm on the sampling grid. Stops (without reporting
    /// or re-arming) once the instance has flushed or its node went
    /// down, so a drained job's calendar actually empties. Sampling
    /// never restarts after a crash — see the `Revive` handler.
    fn sample_tick(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let s = self
            .sample
            .as_mut()
            .expect("SampleTick without sampling state");
        s.armed = false;
        if self.node.borrow().is_down() || self.flushed {
            return;
        }
        let depth: u64 = self.queue.iter().map(|p| p.len() as u64).sum();
        let now = ctx.now();
        let cpu_ns = self
            .node
            .borrow()
            .cpu_free_at()
            .as_nanos()
            .saturating_sub(now.as_nanos());
        ctx.send(
            s.balancer,
            s.report_delay,
            Msg::DepthReport {
                stage: self.stage,
                replica: self.instance,
                depth,
                cpu_ns,
            },
        );
        ctx.send(ctx.me(), s.period, Msg::SampleTick);
        s.armed = true;
    }
}

/// Arrival instant of a packet, plus the NIC serialization time charged
/// for it (`None` for a same-node hand-off, which never touches the NIC).
fn delivery_time(
    now: SimTime,
    from: &Rc<RefCell<NodeRes>>,
    to: NodeId,
    bytes: u64,
    link_rate: f64,
    latency: SimDuration,
) -> (SimTime, Option<SimDuration>) {
    let same_node = from.borrow().id == to;
    if same_node {
        (now, None)
    } else {
        let grant = from.borrow_mut().charge_nic(now, bytes, link_rate);
        (grant.end + latency, Some(grant.end.since(grant.start)))
    }
}

/// The dispatch ordering key of the current event — `(0, 0)` in
/// sequential mode, where side effects are already totally ordered.
fn par_key<M>(ctx: &Ctx<'_, M>) -> (u64, u64) {
    ctx.par_key().unwrap_or((0, 0))
}

/// Relative CPU speed of node `id` under `cfg` — bit-identical to the
/// `speed` a fresh [`NodeRes::new`] would report, without needing the
/// node object (partitions instantiate only the nodes they own, but
/// routing capacities cover remote destinations too).
fn node_speed(cfg: &ClusterConfig, id: NodeId) -> f64 {
    match id {
        NodeId::Host(_) => cfg.host_speed(),
        NodeId::Asu(_) => cfg.asu_speed() * (1.0 - cfg.background_asu_cpu),
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for InstanceActor<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::Arrive { p, meta } => {
                if self.is_down() {
                    match meta {
                        Some(meta) => {
                            // Bounce: a control-plane NACK back to the
                            // sender, one control delay later (the
                            // minimum cross-node delay, so the parallel
                            // engine's lookahead always covers it).
                            self.metrics.borrow_mut().fault.nacks += 1;
                            ctx.send(meta.sender, self.ctl, Msg::Nack { p, meta });
                        }
                        None => {
                            // A source self-delivery racing the crash;
                            // the records stay durable on disk and are
                            // recovered by a repair pass.
                            self.metrics.borrow_mut().fault.lost_queued_records += p.len() as u64;
                        }
                    }
                    return;
                }
                if let Some(ra) = &mut self.ra {
                    // A source self-delivery: the in-flight read landed
                    // and now occupies a staging frame.
                    ra.pending = false;
                    ra.staged += 1;
                }
                self.queue.push_back(p);
                self.try_start(ctx);
                if self.ra.is_some() {
                    self.source_next(ctx);
                }
            }
            Msg::Nack { p, meta } => {
                // Roll back the optimistic backlog charge, then retry.
                if meta.dest != usize::MAX {
                    if let Some(d) = &self.down {
                        d.gauge
                            .sub(meta.dest, p.len() as u64, ctx.now(), par_key(ctx));
                    }
                }
                self.redeliver(ctx, p, meta);
            }
            Msg::Retry { p, meta } => {
                if self.is_down() {
                    self.metrics.borrow_mut().fault.lost_queued_records += p.len() as u64;
                    return;
                }
                self.route_packet(ctx, meta.port, p, meta.attempt);
            }
            Msg::Eos => {
                self.eos_seen += 1;
                debug_assert!(
                    self.eos_seen <= self.eos_expected,
                    "stage {} instance {} saw too many EOS",
                    self.stage,
                    self.instance
                );
                self.try_start(ctx);
            }
            Msg::Work(epoch) => {
                if epoch == self.epoch {
                    self.complete_unit(ctx);
                }
                // Stale stamps belong to a pre-crash life of this
                // instance; the service window died with the node.
            }
            Msg::SourceNext => {
                debug_assert!(self.is_source);
                self.source_next(ctx);
            }
            Msg::Kill => self.kill(ctx),
            Msg::Revive => {
                debug_assert!(self.fault.is_some(), "Revive outside fault mode");
                // Fresh volatile state; process whatever arrives from now
                // on. Source read chains do not resume (their unread
                // extent is re-dispatched by orchestration-level repair).
                self.try_start(ctx);
                // Sampling does NOT resume: a revived instance may
                // never see another EOS (its pre-crash incarnation
                // consumed them), so a perpetual sampling chain would
                // keep the calendar alive forever. The balancer's
                // zero-filled snapshot reads the revived replica as
                // unloaded — the clean slate it actually has.
            }
            Msg::SampleTick => self.sample_tick(ctx),
            Msg::WeightUpdate { stage, weights } => {
                if let Some(d) = &mut self.down {
                    debug_assert_eq!(d.dest_stage, stage, "weight update for the wrong stage");
                    *d.weights.borrow_mut() = weights;
                }
            }
            Msg::FaultStep(_)
            | Msg::Detect(_)
            | Msg::BalanceTick
            | Msg::DepthReport { .. }
            | Msg::JobArrive(_)
            | Msg::SinkFlushed(_)
            | Msg::RepairStep(_)
            | Msg::RepairFetch(_)
            | Msg::RepairCancel(_)
            | Msg::RepairNext
            | Msg::RepairWrite(_)
            | Msg::RepairDone { .. }
            | Msg::RepairBounce { .. }
            | Msg::RepairSampleTick
            | Msg::RepairFlush
            | Msg::RepairWriteFlush => {
                unreachable!("controller message delivered to an instance")
            }
        }
    }
}

/// The fault controller: replays the plan's node-health steps and the
/// detector timeline's precomputed verdicts. The parallel engine runs
/// one controller per partition, each seeded only with the events whose
/// node it owns; the sequential engine runs a single instance owning
/// every node. Every send it makes is either node-local (`send_now` to
/// instances resident on the event's node) or carries the control
/// delay, so replay is byte-identical however the actors partition.
struct FaultController<R: Record> {
    events: Vec<FaultEvent>,
    /// Node objects this controller owns (dense index; `None` = another
    /// partition's node, which this controller is never asked about).
    nodes: Vec<Option<Rc<RefCell<NodeRes>>>>,
    flags: Rc<RefCell<Vec<InstFlags>>>,
    /// Global instance indices resident on each node.
    instances_on: Vec<Vec<usize>>,
    inst_actor: Vec<ActorId>,
    /// Downstream `(actor, dense node)` fencing targets per global
    /// instance.
    inst_downstream: Vec<Option<Vec<(ActorId, usize)>>>,
    /// Minimum cross-node delay (the parallel lookahead); fence EOS to
    /// other nodes travels with it.
    ctl: SimDuration,
    metrics: Rc<RefCell<Metrics<R>>>,
}

impl<R: Record> FaultController<R> {
    /// The node a step names — always owned by this controller: plan
    /// events are bounds-checked against the cluster before the run
    /// starts, the sequential controller owns every node, and a
    /// partition's controller is seeded only with steps for nodes it
    /// owns. A miss is a seeding bug, not a user-reachable state, so it
    /// degrades to skipping the step instead of aborting the run.
    fn node(&self, n: usize) -> Option<&Rc<RefCell<NodeRes>>> {
        let nd = self.nodes[n].as_ref();
        debug_assert!(nd.is_some(), "fault event on an unowned node");
        nd
    }

    /// EOS on behalf of every unflushed instance on a detected-down
    /// node, so downstream consumers stop waiting for the dead. Marks
    /// for consumers on the dead node itself land immediately (the
    /// node-local convention); marks for other nodes travel one control
    /// delay, like any cross-node control message.
    fn fence_node(&mut self, ctx: &mut Ctx<'_, Msg<R>>, node: usize) {
        for i in 0..self.instances_on[node].len() {
            let gi = self.instances_on[node][i];
            let already = {
                let f = self.flags.borrow();
                f[gi].flushed || f[gi].fenced
            };
            if already {
                continue;
            }
            self.flags.borrow_mut()[gi].fenced = true;
            self.metrics.borrow_mut().fault.fenced_instances += 1;
            if let Some(targets) = &self.inst_downstream[gi] {
                for &(a, target_node) in targets {
                    if target_node == node {
                        ctx.send_now(a, Msg::Eos);
                    } else {
                        ctx.send(a, self.ctl, Msg::Eos);
                    }
                }
            }
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, Msg<R>>, i: usize) {
        let now = ctx.now();
        let key = par_key(ctx);
        match self.events[i] {
            FaultEvent::Crash { node, .. } => {
                let Some(nd) = self.node(node) else { return };
                nd.borrow_mut().set_health(NodeHealth::Down);
                for j in 0..self.instances_on[node].len() {
                    let gi = self.instances_on[node][j];
                    ctx.send_now(self.inst_actor[gi], Msg::Kill);
                }
                self.metrics
                    .borrow_mut()
                    .trace
                    .record_with_key(now, key, || ("fault", format!("crash node {node}")));
            }
            FaultEvent::Recover { node, .. } => {
                let Some(nd) = self.node(node) else { return };
                nd.borrow_mut().set_health(NodeHealth::Up);
                for j in 0..self.instances_on[node].len() {
                    let gi = self.instances_on[node][j];
                    ctx.send_now(self.inst_actor[gi], Msg::Revive);
                }
                self.metrics
                    .borrow_mut()
                    .trace
                    .record_with_key(now, key, || ("fault", format!("recover node {node}")));
            }
            FaultEvent::Degrade {
                node,
                cpu_factor,
                disk_factor,
                ..
            } => {
                let Some(nd) = self.node(node) else { return };
                nd.borrow_mut().set_health(NodeHealth::Degraded {
                    cpu_factor,
                    disk_factor,
                });
                self.metrics
                    .borrow_mut()
                    .trace
                    .record_with_key(now, key, || ("fault", format!("degrade node {node}")));
            }
            FaultEvent::LinkLoss { .. } => {
                // Senders sample the loss timeline directly; loss steps
                // are never seeded as controller events.
                unreachable!("LinkLoss is not a controller step")
            }
        }
    }

    /// A precomputed detection verdict lands: count it and fence. The
    /// routing masks flip on their own (instances sample the timeline).
    fn detect(&mut self, ctx: &mut Ctx<'_, Msg<R>>, node: usize) {
        let now = ctx.now();
        let key = par_key(ctx);
        {
            let mut m = self.metrics.borrow_mut();
            m.fault.detections += 1;
            m.trace
                .record_with_key(now, key, || ("fault", format!("detected node {node} down")));
        }
        self.fence_node(ctx, node);
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for FaultController<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::FaultStep(i) => self.apply(ctx, i),
            Msg::Detect(n) => self.detect(ctx, n),
            _ => unreachable!("non-fault message delivered to the controller"),
        }
    }
}

/// One replicated stage the balancer watches: its backlog gauge, the
/// shared weight vector its upstream routers consult, and the node each
/// replica lives on (for CPU-backlog sampling).
struct BalanceTarget {
    stage: usize,
    gauge: Rc<RefCell<StageGauge>>,
    weights: Rc<RefCell<Vec<f64>>>,
    node_idx: Vec<usize>,
}

/// The runtime load balancer (Section 8's feedback loop): a periodic
/// actor that samples per-instance queue depth and per-node CPU backlog
/// in virtual time and re-weights replica routing by inverse backlog
/// (see [`crate::balance`]). It writes weights; the fault layer's
/// detected-up mask stays an independent, composed filter.
struct BalancerActor<R: Record> {
    spec: balance::BalanceSpec,
    targets: Vec<BalanceTarget>,
    nodes: Vec<Rc<RefCell<NodeRes>>>,
    metrics: Rc<RefCell<Metrics<R>>>,
    /// `last_activity` observed at the previous tick; used to stop
    /// ticking once the job quiesces so the simulation can drain.
    last_seen: SimTime,
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for BalancerActor<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        debug_assert!(matches!(msg, Msg::BalanceTick));
        let now = ctx.now();
        let mut queued = false;
        for t in &self.targets {
            let depths = t.gauge.borrow().depths().to_vec();
            queued |= depths.iter().any(|&d| d > 0);
            let cpu_backlog: Vec<u64> = t
                .node_idx
                .iter()
                .map(|&ni| {
                    let free = self.nodes[ni].borrow().cpu_free_at();
                    free.as_nanos().saturating_sub(now.as_nanos())
                })
                .collect();
            let new = balance::reweight(
                &depths,
                &cpu_backlog,
                self.spec.deadband,
                self.spec.cpu_deadband.as_nanos(),
                self.spec.min_weight,
            );
            if let Some(w) = new {
                if *t.weights.borrow() != w {
                    let stage = t.stage;
                    let mut m = self.metrics.borrow_mut();
                    m.reweights += 1;
                    m.trace.record_with(now, || {
                        ("balance", format!("reweight stage {stage}: {w:?}"))
                    });
                    drop(m);
                    *t.weights.borrow_mut() = w;
                }
            }
        }
        // Keep sampling while the job is visibly alive: queued records,
        // committed CPU time, or progress since the previous tick. Once
        // all three go quiet the balancer stops re-arming, so a drained
        // job's event calendar actually empties.
        let activity = self.metrics.borrow().last_activity;
        let cpu_busy = self.nodes.iter().any(|n| n.borrow().cpu_free_at() > now);
        let alive = queued || cpu_busy || activity > self.last_seen;
        self.last_seen = activity;
        if alive {
            ctx.timer(self.spec.period, Msg::BalanceTick);
        }
    }
}

/// One stage the snapshot balancer re-weights: its replication (for
/// zero-filling missing reports) and the upstream sender instances that
/// receive `WeightUpdate`s.
struct SnapTarget {
    stage: usize,
    replication: usize,
    senders: Vec<ActorId>,
}

/// The snapshot-mode balancer (the default; see [`BalanceSpec::live`]
/// for the sequential-only compat sampler). Purely reactive — it holds
/// no timer and reads no shared state: watched instances self-sample on
/// the `k·period` grid and ship [`Msg::DepthReport`]s with a fixed
/// delay; a batch of reports triggers one reweight from the snapshot
/// they form, and changed weights travel to the senders as
/// [`Msg::WeightUpdate`]s with the control delay. The balancer thus
/// always acts on the *previous* window's backlog — one window of
/// staleness buys an actor protocol the partitioned engine replays
/// byte-identically.
struct SnapshotBalancer<R: Record> {
    spec: balance::BalanceSpec,
    targets: Vec<SnapTarget>,
    /// Latest report per `(stage, replica)`: `(depth, cpu_ns)`.
    snap: BTreeMap<(usize, usize), (u64, u64)>,
    /// A `BalanceTick` is queued for the batch currently landing.
    pending: bool,
    /// Minimum cross-node delay; weight updates travel with it.
    ctl: SimDuration,
    /// Weights currently in force per stage (absent = never reweighted).
    cur: BTreeMap<usize, Vec<f64>>,
    metrics: Rc<RefCell<Metrics<R>>>,
}

impl<R: Record> SnapshotBalancer<R> {
    fn rebalance(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let now = ctx.now();
        for t in &self.targets {
            let mut depths = Vec::with_capacity(t.replication);
            let mut cpu = Vec::with_capacity(t.replication);
            for j in 0..t.replication {
                let (d, c) = self.snap.get(&(t.stage, j)).copied().unwrap_or((0, 0));
                depths.push(d);
                cpu.push(c);
            }
            let new = balance::reweight(
                &depths,
                &cpu,
                self.spec.deadband,
                self.spec.cpu_deadband.as_nanos(),
                self.spec.min_weight,
            );
            if let Some(w) = new {
                if self.cur.get(&t.stage) != Some(&w) {
                    let stage = t.stage;
                    let key = par_key(ctx);
                    let mut m = self.metrics.borrow_mut();
                    m.reweights += 1;
                    m.trace.record_with_key(now, key, || {
                        ("balance", format!("reweight stage {stage}: {w:?}"))
                    });
                    drop(m);
                    for &a in &t.senders {
                        ctx.send(
                            a,
                            self.ctl,
                            Msg::WeightUpdate {
                                stage,
                                weights: w.clone(),
                            },
                        );
                    }
                    self.cur.insert(stage, w);
                }
            }
        }
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for SnapshotBalancer<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::DepthReport {
                stage,
                replica,
                depth,
                cpu_ns,
            } => {
                self.snap.insert((stage, replica), (depth, cpu_ns));
                if !self.pending {
                    // Reweight once the whole batch is in: reports of a
                    // grid instant all arrive at the same virtual time
                    // (uniform shipping delay), so a 1 ns deferral runs
                    // after the last of them and before anything else.
                    self.pending = true;
                    ctx.send(ctx.me(), SimDuration::from_nanos(1), Msg::BalanceTick);
                }
            }
            Msg::BalanceTick => {
                self.pending = false;
                self.rebalance(ctx);
            }
            _ => unreachable!("non-balance message delivered to the balancer"),
        }
    }
}

/// The background re-replication coordinator (see [`crate::repair`]):
/// replays the precomputed repair timeline through the pure
/// [`RepairEngine`] and exchanges transfer commands with the per-ASU
/// repair agents. Exactly like the fault controller, every input is
/// either pre-seeded static data or a message that travelled at least
/// one control delay, so repair runs partition cleanly (the coordinator
/// lives on partition 0).
///
/// The engine is the ground truth for replica state; transfers are
/// *optimistic* — a source that crashes after dispatch still delivers
/// (the bytes were on the wire), and completions are validated by
/// assignment id at credit time. A crashed agent hands its queue back
/// within one pacing interval, so no assignment is ever stranded.
/// A completion buffered at the coordinator until the instant's
/// [`Msg::RepairFlush`]: either a landed/failed transfer or a bounce.
enum RepairOutcome {
    Done {
        id: u64,
        block: u64,
        dest: u32,
        ok: bool,
    },
    Bounce {
        id: u64,
        block: u64,
    },
}

impl RepairOutcome {
    /// Assignment id — unique per outcome, the canonical flush order.
    fn id(&self) -> u64 {
        match *self {
            RepairOutcome::Done { id, .. } | RepairOutcome::Bounce { id, .. } => id,
        }
    }
}

struct RepairCoordinator<R: Record> {
    engine: RepairEngine,
    timeline: Arc<Vec<(SimTime, RepairEv)>>,
    /// Repair agent of ASU ordinal `d`.
    agents: Vec<ActorId>,
    ctl: SimDuration,
    /// Trajectory recording on (`RepairSpec::sample_every > 0`).
    sampling: bool,
    /// Completions awaiting this instant's flush. The engine's source
    /// and destination choices read mutable load state, so same-instant
    /// completions are applied in assignment-id order at the flush —
    /// never in arrival order, which the sequential and partitioned
    /// engines do not agree on.
    buf: Vec<RepairOutcome>,
    /// Instant the pending [`Msg::RepairFlush`] was scheduled for (at
    /// most one is ever in flight).
    flush_at: SimTime,
    metrics: Rc<RefCell<Metrics<R>>>,
}

impl<R: Record> RepairCoordinator<R> {
    /// Ship the engine's commands and mirror its state into the run
    /// metrics (the report reads the mirror after the drain).
    fn emit(&mut self, ctx: &mut Ctx<'_, Msg<R>>, cmds: Vec<RepairCmd>) {
        for c in cmds {
            match c {
                RepairCmd::Fetch { src, job } => {
                    ctx.send(self.agents[src as usize], self.ctl, Msg::RepairFetch(job));
                }
                RepairCmd::Cancel { src, id } => {
                    ctx.send(self.agents[src as usize], self.ctl, Msg::RepairCancel(id));
                }
            }
        }
        let mut m = self.metrics.borrow_mut();
        m.repair = self.engine.stats;
        m.replica_hist = self.engine.hist().to_vec();
    }

    /// Buffer a completion and make sure this instant's flush is
    /// scheduled. The flush self-message fires after every other repair
    /// message at the instant in both engines, so applying the buffer
    /// there (in id order) erases any arrival-order difference between
    /// the sequential and partitioned runs.
    fn defer(&mut self, ctx: &mut Ctx<'_, Msg<R>>, o: RepairOutcome) {
        self.buf.push(o);
        let now = ctx.now();
        if self.flush_at != now {
            self.flush_at = now;
            ctx.send_now(ctx.me(), Msg::RepairFlush);
        }
    }

    /// Record a trajectory point, coalescing same-instant entries (the
    /// last write at an instant wins). All same-instant engine updates
    /// are applied by the canonical-order flush, so the surviving entry
    /// — the post-instant state — is identical across thread counts.
    fn record(&mut self, now: SimTime) {
        if !self.sampling {
            return;
        }
        let s = self.engine.sample(now);
        let mut m = self.metrics.borrow_mut();
        if let Some(last) = m.repair_samples.last_mut() {
            if last.at == s.at {
                *last = s;
                return;
            }
        }
        m.repair_samples.push(s);
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for RepairCoordinator<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::RepairStep(i) => {
                let (_, ev) = self.timeline[i];
                let cmds = self.engine.on_event(ev);
                self.emit(ctx, cmds);
                self.record(ctx.now());
            }
            Msg::RepairDone {
                id,
                block,
                dest,
                ok,
            } => {
                self.defer(
                    ctx,
                    RepairOutcome::Done {
                        id,
                        block,
                        dest,
                        ok,
                    },
                );
            }
            Msg::RepairBounce { id, block } => {
                self.defer(ctx, RepairOutcome::Bounce { id, block });
            }
            Msg::RepairFlush => {
                let mut buf = std::mem::take(&mut self.buf);
                buf.sort_unstable_by_key(RepairOutcome::id);
                for o in buf {
                    let cmds = match o {
                        RepairOutcome::Done {
                            id,
                            block,
                            dest,
                            ok,
                        } => self.engine.on_done(id, block, dest, ok),
                        RepairOutcome::Bounce { id, block } => self.engine.on_bounce(id, block),
                    };
                    self.emit(ctx, cmds);
                }
                self.record(ctx.now());
            }
            Msg::RepairSampleTick => self.record(ctx.now()),
            _ => unreachable!("non-repair message delivered to the coordinator"),
        }
    }
}

/// One repair agent per ASU: queues the transfers the coordinator
/// assigns to this ASU as a *source*, paces dispatches to the per-node
/// repair-bandwidth cap, and charges every transfer through the node's
/// real disk and NIC — repair contends with foreground work on the same
/// FCFS resources (and repair writes extend the disk-quiesce horizon,
/// so the makespan honestly includes trailing re-replication).
struct RepairAgent<R: Record> {
    /// This agent's ASU ordinal.
    ordinal: usize,
    node: Rc<RefCell<NodeRes>>,
    coord: ActorId,
    /// Actor id of ASU ordinal 0's agent (destination `d` is `base + d`).
    agents_base: usize,
    queue: VecDeque<RepairJob>,
    /// A pacing chain ([`Msg::RepairNext`]) is in flight.
    busy: bool,
    /// Earliest instant the next transfer may start (the pacing cap:
    /// one block per `pace` per node).
    next_slot: SimTime,
    /// Destination writes that arrived at the current instant, buffered
    /// until its [`Msg::RepairWriteFlush`].
    wbuf: Vec<RepairJob>,
    /// Instant the pending [`Msg::RepairWriteFlush`] was scheduled for.
    wflush_at: SimTime,
    pace: SimDuration,
    link_rate: f64,
    latency: SimDuration,
    ctl: SimDuration,
    metrics: Rc<RefCell<Metrics<R>>>,
}

impl<R: Record> RepairAgent<R> {
    fn bounce(&mut self, ctx: &mut Ctx<'_, Msg<R>>, job: RepairJob) {
        ctx.send(
            self.coord,
            self.ctl,
            Msg::RepairBounce {
                id: job.id,
                block: job.block,
            },
        );
    }

    /// Dispatch the next queued transfer, respecting the pacing cap. At
    /// most one chain event is ever outstanding (`busy`), so a queue is
    /// revisited within one pacing interval — in particular, a crashed
    /// agent hands its whole queue back to the coordinator by then.
    fn pump(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let now = ctx.now();
        if self.node.borrow().is_down() {
            while let Some(job) = self.queue.pop_front() {
                self.bounce(ctx, job);
            }
            self.busy = false;
            return;
        }
        if now < self.next_slot {
            ctx.send_at(ctx.me(), self.next_slot, Msg::RepairNext);
            return;
        }
        let Some(job) = self.queue.pop_front() else {
            self.busy = false;
            return;
        };
        self.next_slot = now + self.pace;
        let (ready, grant_end) = {
            let mut n = self.node.borrow_mut();
            let ready = n.disk_read(now, job.bytes);
            let grant = n.charge_nic(ready, job.bytes, self.link_rate);
            (ready, grant.end)
        };
        self.metrics.borrow_mut().repair_src_bytes[self.ordinal] += job.bytes;
        // Arrival pays the full NIC serialization plus the link latency,
        // so even an agent-local hop travels at least one control delay
        // (the frame overhead is inside the grant) — the partitioned
        // lookahead holds for every repair message.
        ctx.send_at(
            ActorId(self.agents_base + job.dest as usize),
            grant_end + self.latency,
            Msg::RepairWrite(job),
        );
        ctx.send_at(ctx.me(), ready.max(self.next_slot), Msg::RepairNext);
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for RepairAgent<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::RepairFetch(job) => {
                if self.node.borrow().is_down() {
                    self.bounce(ctx, job);
                    return;
                }
                if job.critical {
                    // Blocks more than one copy down jump the queue:
                    // they sit after earlier critical jobs but ahead of
                    // every single-copy-down repair. Insertion order is
                    // deterministic (one coordinator feeds each agent).
                    let pos = self
                        .queue
                        .iter()
                        .position(|j| !j.critical)
                        .unwrap_or(self.queue.len());
                    self.queue.insert(pos, job);
                } else {
                    self.queue.push_back(job);
                }
                if !self.busy {
                    self.busy = true;
                    self.pump(ctx);
                }
            }
            Msg::RepairCancel(id) => {
                self.queue.retain(|j| j.id != id);
            }
            Msg::RepairNext => self.pump(ctx),
            Msg::RepairWrite(job) => {
                self.wbuf.push(job);
                let now = ctx.now();
                if self.wflush_at != now {
                    self.wflush_at = now;
                    ctx.send_now(ctx.me(), Msg::RepairWriteFlush);
                }
            }
            Msg::RepairWriteFlush => {
                let now = ctx.now();
                let mut wbuf = std::mem::take(&mut self.wbuf);
                wbuf.sort_unstable_by_key(|j| j.id);
                for job in wbuf {
                    let ok = !self.node.borrow().is_down();
                    let done_at = if ok {
                        // The new copy pays the destination's disk; the
                        // run only quiesces once it is durable.
                        self.node.borrow_mut().disk_write(now, job.bytes).max(now)
                    } else {
                        now
                    };
                    ctx.send_at(
                        self.coord,
                        done_at + self.ctl,
                        Msg::RepairDone {
                            id: job.id,
                            block: job.block,
                            dest: job.dest,
                            ok,
                        },
                    );
                }
            }
            _ => unreachable!("non-repair message delivered to a repair agent"),
        }
    }
}

/// Multi-tenant admission/dispatch controller (see [`crate::multi`]).
///
/// One extra actor that replays the arrival schedule through the
/// embedding's [`SchedGate`] and gates each job's source chains: the
/// sources of a gated run are *not* seeded at time zero — the scheduler
/// sends their first [`Msg::SourceNext`] at the dispatch instant, so a
/// queued job holds no emulated resources until admitted. Sink
/// instances report back with [`Msg::SinkFlushed`]; a job completes
/// once every one of its sink instances has flushed.
struct SchedActor<R: Record> {
    gate: Box<dyn SchedGate>,
    /// Source instance actors per job, in dispatch (seeding) order.
    sources: Vec<Vec<ActorId>>,
    /// Sink-instance flushes each job must collect to complete.
    sinks_expected: Vec<usize>,
    sinks_seen: Vec<usize>,
    done: Vec<bool>,
    /// Shared with the [`crate::multi::run_jobs`] caller, which reads
    /// the decisions back into per-job statistics after the run.
    log: Rc<RefCell<Vec<SchedEvent>>>,
    metrics: Rc<RefCell<Metrics<R>>>,
}

impl<R: Record> SchedActor<R> {
    fn note(&mut self, ctx: &Ctx<'_, Msg<R>>, job: usize, kind: SchedEventKind) {
        let now = ctx.now();
        self.log.borrow_mut().push(SchedEvent { at: now, job, kind });
        self.metrics
            .borrow_mut()
            .trace
            .record_with(now, || ("sched", format!("job {job} {kind:?}")));
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg<R>>, job: usize) {
        self.note(ctx, job, SchedEventKind::Dispatch);
        for i in 0..self.sources[job].len() {
            let actor = self.sources[job][i];
            ctx.send_now(actor, Msg::SourceNext);
        }
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for SchedActor<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::JobArrive(j) => {
                self.note(ctx, j, SchedEventKind::Arrive);
                match self.gate.on_arrival(j, ctx.now()) {
                    GateDecision::Dispatch => self.dispatch(ctx, j),
                    GateDecision::Queue => self.note(ctx, j, SchedEventKind::Queued),
                    GateDecision::Reject => self.note(ctx, j, SchedEventKind::Rejected),
                }
            }
            Msg::SinkFlushed(j) => {
                self.sinks_seen[j] += 1;
                debug_assert!(
                    self.sinks_seen[j] <= self.sinks_expected[j],
                    "job {j} over-reported sink flushes"
                );
                if self.sinks_seen[j] == self.sinks_expected[j] && !self.done[j] {
                    self.done[j] = true;
                    self.note(ctx, j, SchedEventKind::Complete);
                    for k in self.gate.on_completion(j, ctx.now()) {
                        self.dispatch(ctx, k);
                    }
                }
            }
            _ => unreachable!("non-scheduler message delivered to the scheduler"),
        }
    }
}

/// Run `job` on the cluster described by `cfg` with no faults.
pub fn run_job<R: Record>(
    cfg: &ClusterConfig,
    job: Job<R>,
) -> Result<EmulationReport<R>, JobError> {
    run_job_with_faults(cfg, &FaultSpec::none(), job)
}

/// Run `job` on the cluster described by `cfg` under the fault plan in
/// `spec`. With an inactive spec (empty plan) this is exactly
/// [`run_job`]: no controller, no masks, byte-identical timings.
pub fn run_job_with_faults<R: Record>(
    cfg: &ClusterConfig,
    spec: &FaultSpec,
    job: Job<R>,
) -> Result<EmulationReport<R>, JobError> {
    run_job_inner(cfg, spec, job, None)
}

/// Everything the sequential runtime needs to run a merged multi-job
/// graph under a scheduler (constructed by [`crate::multi::run_jobs`]).
pub(crate) struct SchedSetup {
    /// Arrival instant per job id (each seeds one [`Msg::JobArrive`]).
    pub arrivals: Vec<SimTime>,
    /// Owning job of each stage in the merged graph.
    pub stage_job: Vec<usize>,
    /// Source `(stage, instance)` pairs per job, in the same stage-major
    /// order the direct path seeds, so a lone job dispatched at its
    /// arrival replays the direct run's source order exactly.
    pub sources: Vec<Vec<(usize, usize)>>,
    /// Sink-instance flush count each job must reach to complete.
    pub sinks: Vec<usize>,
    /// The pluggable admission/fairness gate.
    pub gate: Box<dyn SchedGate>,
    /// Shared event log the embedding reads back after the run.
    pub log: Rc<RefCell<Vec<SchedEvent>>>,
}

/// Run a merged multi-job graph under a scheduler gate. Fault-free by
/// construction (completion detection counts sink flushes, which the
/// fault layer's fencing would starve) and sequential-only (`threads >
/// 1` records the `"scheduler"` fallback reason).
pub(crate) fn run_job_sched<R: Record>(
    cfg: &ClusterConfig,
    job: Job<R>,
    setup: SchedSetup,
) -> Result<EmulationReport<R>, JobError> {
    run_job_inner(cfg, &FaultSpec::none(), job, Some(setup))
}

fn run_job_inner<R: Record>(
    cfg: &ClusterConfig,
    spec: &FaultSpec,
    job: Job<R>,
    sched: Option<SchedSetup>,
) -> Result<EmulationReport<R>, JobError> {
    let Job {
        graph,
        placement,
        mut inputs,
    } = job;
    graph.validate()?;
    placement.validate(&graph.placement_rows(), cfg.asu_mem_bytes)?;
    for (s, stage) in graph.stages().iter().enumerate() {
        if !stage.is_source && graph.in_degree(StageId(s)) == 0 {
            return Err(JobError::DisconnectedStage(StageId(s)));
        }
    }
    for &(s, i) in inputs.keys() {
        if !graph.stages()[s].is_source {
            return Err(JobError::InputForNonSource {
                stage: s,
                instance: i,
            });
        }
    }
    let active = spec.is_active();
    let total_nodes = cfg.total_nodes();
    if active {
        assert!(
            spec.heartbeat_period.as_nanos() > 0,
            "heartbeat period must be positive"
        );
        for ev in spec.plan.sorted_events() {
            let bad = match ev {
                FaultEvent::LinkLoss { from, to, .. } => from.max(to),
                other => other.node(),
            };
            if bad >= total_nodes {
                return Err(JobError::FaultPlanNode { node: bad });
            }
        }
    }
    // Background re-replication engages only with the fault layer on
    // (without a plan there is nothing to repair), but a spec that does
    // not fit the cluster is a typed error either way — on both engines,
    // before anything runs.
    if let Some(rs) = &spec.repair {
        if let Err(why) = rs.validate(cfg.asus) {
            return Err(JobError::RepairConfig(why));
        }
    }
    let repair_on = active && spec.repair.is_some();

    // The control delay: the minimum cross-node delay (link latency
    // plus the NIC's per-frame overhead service), which is exactly the
    // partitioned engine's lookahead. Every cross-node control message
    // (NACK bounce, fence EOS, depth report, weight update) travels
    // with at least this much, so the protocol partitions cleanly.
    let ctl = SimDuration::from_nanos(
        cfg.link_latency.as_nanos()
            + nic_service(cfg.nic_frame_overhead_bytes, cfg.link_bytes_per_sec).as_nanos(),
    );
    let balance_on = cfg.balance.is_active();
    // Hand eligible runs to the partitioned engine; the few shapes it
    // cannot reproduce keep the (always byte-identical) sequential path
    // and record why. Faulted and snapshot-balanced runs partition
    // fine; the holdouts are backlog-sensitive routing (reads live
    // cross-partition queue depths), a zero minimum cross-node delay
    // (no lookahead), `fail_fast` specs (a global early stop), and the
    // live-read balancer compat sampler.
    let par_fallback: Option<&'static str> = if cfg.threads > 1 {
        if sched.is_some() {
            // Gated runs hold back source seeds until the scheduler
            // dispatches them — cross-partition control flow the
            // conservative engine has no lookahead for.
            Some("scheduler")
        } else if !parallel_eligible(&graph) {
            Some("backlog routing")
        } else if ctl.as_nanos() == 0 {
            Some("zero latency")
        } else if active && spec.fail_fast {
            Some("fault plan")
        } else if balance_on && cfg.balance.live {
            Some("balancer")
        } else {
            None
        }
    } else {
        None
    };
    if cfg.threads > 1 && par_fallback.is_none() {
        return run_job_parallel(cfg, spec, graph, placement, inputs);
    }

    // Nodes: hosts 0..H, then ASUs.
    let nodes: Vec<Rc<RefCell<NodeRes>>> = (0..cfg.hosts)
        .map(NodeId::Host)
        .chain((0..cfg.asus).map(NodeId::Asu))
        .map(|id| Rc::new(RefCell::new(NodeRes::new(id, cfg))))
        .collect();
    let node_rc = |id: NodeId| -> Rc<RefCell<NodeRes>> { nodes[node_index(cfg, id)].clone() };

    let mut sim: Simulation<Msg<R>> = Simulation::new(cfg.seed);
    let actor_ids: Vec<Vec<ActorId>> = graph
        .stages()
        .iter()
        .map(|s| (0..s.replication).map(|_| sim.reserve_actor()).collect())
        .collect();
    let gauges: Vec<Rc<RefCell<StageGauge>>> = graph
        .stages()
        .iter()
        .map(|s| Rc::new(RefCell::new(StageGauge::new(s.replication))))
        .collect();
    // Balancer-owned routing weights, one shared vector per stage.
    // Empty vectors mean "no weighting"; senders then take the exact
    // weightless router path, so an idle balancer perturbs nothing.
    let weight_handles: Vec<Rc<RefCell<Vec<f64>>>> = graph
        .stages()
        .iter()
        .map(|_| Rc::new(RefCell::new(Vec::new())))
        .collect();
    let metrics = Rc::new(RefCell::new(Metrics::<R>::new(graph.stages().len())));
    if cfg.trace_capacity > 0 {
        metrics.borrow_mut().trace = Trace::enabled(cfg.trace_capacity);
    }

    // Fault-layer shared state (cheap to build; unused when inactive).
    // The detector and loss schedules are precomputed timelines — the
    // exact artifacts the parallel build shares across partitions.
    let total_instances: usize = graph.stages().iter().map(|s| s.replication).sum();
    let detected = Arc::new(DetectedTimeline::build(
        &spec.plan,
        spec.heartbeat_period,
        spec.heartbeat_timeout,
        total_nodes,
    ));
    let loss = Arc::new(LossTimeline::build(&spec.plan, total_nodes));
    let flags = Rc::new(RefCell::new(vec![InstFlags::default(); total_instances]));
    let mut instances_on: Vec<Vec<usize>> = vec![Vec::new(); total_nodes];
    let mut inst_actor: Vec<ActorId> = Vec::with_capacity(total_instances);
    let mut inst_downstream: Vec<Option<Vec<(ActorId, usize)>>> =
        Vec::with_capacity(total_instances);

    // Snapshot-mode balancer (the default): watched stages are known up
    // front so instances can be armed as they are built. Reserving the
    // controller slot first keeps actor ids identical to the live-mode
    // layout (instances, controller, balancer).
    let snapshot_bal = balance_on && !cfg.balance.live;
    let watched: Vec<usize> = if balance_on {
        watched_stages(&graph)
    } else {
        Vec::new()
    };
    let ctrl_id = active.then(|| sim.reserve_actor());
    let bal_id = (snapshot_bal && !watched.is_empty()).then(|| sim.reserve_actor());
    // Repair slots: one agent per ASU, then the coordinator — after the
    // balancer slot, the same relative layout (and therefore the same
    // same-instant tiebreak order) the parallel build reserves.
    let repair_ids = repair_on.then(|| {
        let agents: Vec<ActorId> = (0..cfg.asus).map(|_| sim.reserve_actor()).collect();
        let coord = sim.reserve_actor();
        (agents, coord)
    });
    // Scheduler slot last: gated runs are fault-free and sequential,
    // so the extra actor never perturbs the layouts above.
    let sched_id = sched.as_ref().map(|_| sim.reserve_actor());

    // Upstream EOS expectations.
    let eos_expected: Vec<usize> = (0..graph.stages().len())
        .map(|s| {
            let stage = &graph.stages()[s];
            let from_edges: usize = graph
                .edges()
                .iter()
                .filter(|e| e.to == StageId(s))
                .map(|e| graph.stages()[e.from.0].replication)
                .sum();
            from_edges + usize::from(stage.is_source)
        })
        .collect();

    let mut global_idx = 0u64;
    for (s, stage) in graph.stages().iter().enumerate() {
        for i in 0..stage.replication {
            let node_id = placement
                .node_of(StageId(s), i)
                .ok_or(JobError::UnplacedInstance {
                    stage: s,
                    instance: i,
                })?;
            let my_node = node_index(cfg, node_id);
            let down = match graph.out_edge(StageId(s)) {
                Some(e) => {
                    let to = e.to.0;
                    let to_stage = &graph.stages()[to];
                    let mut node_ids = Vec::with_capacity(to_stage.replication);
                    let mut node_idx = Vec::with_capacity(to_stage.replication);
                    for j in 0..to_stage.replication {
                        let nid = placement
                            .node_of(e.to, j)
                            .ok_or(JobError::UnplacedInstance {
                                stage: to,
                                instance: j,
                            })?;
                        node_idx.push(node_index(cfg, nid));
                        node_ids.push(nid);
                    }
                    let capacities = node_ids.iter().map(|&id| node_speed(cfg, id)).collect();
                    let group_size = match e.scope {
                        lmas_core::RouteScope::Global => to_stage.replication,
                        lmas_core::RouteScope::PortGroups { group_size } => group_size,
                    };
                    Some(Downstream {
                        actors: actor_ids[to].clone(),
                        node_ids,
                        node_idx,
                        capacities,
                        router: Router::new(e.routing, cfg.seed, global_idx),
                        gauge: GaugeHandle::Live(gauges[to].clone()),
                        // Snapshot mode: each sender owns its weights
                        // and receives `WeightUpdate`s individually —
                        // the same per-sender channel the partitioned
                        // build uses, so same-instant interleavings
                        // cannot diverge between the engines. Live
                        // compat mode keeps the shared per-stage cell
                        // the `BalancerActor` writes directly.
                        weights: if snapshot_bal {
                            Rc::new(RefCell::new(Vec::new()))
                        } else {
                            weight_handles[to].clone()
                        },
                        group_size,
                        dest_stage: to,
                        coded_r: e.coded_group,
                        coded_buf: if e.coded_group > 1 {
                            vec![
                                Vec::new();
                                actor_ids[to].len().div_ceil(e.coded_group)
                            ]
                        } else {
                            Vec::new()
                        },
                        _marker: std::marker::PhantomData,
                    })
                }
                None => None,
            };
            instances_on[my_node].push(inst_actor.len());
            inst_actor.push(actor_ids[s][i]);
            inst_downstream.push(down.as_ref().map(|d| {
                d.actors
                    .iter()
                    .copied()
                    .zip(d.node_idx.iter().copied())
                    .collect()
            }));
            let source_data: VecDeque<Packet<R>> =
                inputs.remove(&(s, i)).map(Into::into).unwrap_or_default();
            let fault = active.then(|| InstanceFault {
                detected: detected.clone(),
                loss: loss.clone(),
                flags: flags.clone(),
                backoff: spec.backoff,
                fail_fast: spec.fail_fast,
                my_node,
                my_global: inst_actor.len() - 1,
                factory: stage.factory_handle(),
                // Keyed by global instance index: the same stream
                // whichever partition (or engine) hosts the instance.
                rng: DetRng::stream(cfg.seed, (1u64 << 62) | global_idx),
            });
            let watched_here = bal_id.is_some() && watched.binary_search(&s).is_ok();
            let actor = InstanceActor {
                stage: s,
                instance: i,
                functor: stage.instantiate(i),
                node: node_rc(node_id),
                queue: VecDeque::new(),
                pending: None,
                eos_expected: eos_expected[s],
                eos_seen: 0,
                flushed: false,
                down,
                source_data,
                is_source: stage.is_source,
                source_live: true,
                ra: (cfg.storage.pool_frames > 0 && stage.is_source).then(|| RaState {
                    window: cfg.storage.read_ahead + 1,
                    staged: 0,
                    pending: false,
                    eos_sent: false,
                }),
                global_tag: global_idx,
                epoch: 0,
                my_gauge: (!stage.is_source).then(|| (GaugeHandle::Live(gauges[s].clone()), i)),
                metrics: metrics.clone(),
                link_rate: cfg.link_bytes_per_sec,
                latency: cfg.link_latency,
                ctl,
                fault,
                sample: watched_here.then(|| SampleState {
                    period: cfg.balance.period,
                    report_delay: cfg.balance.period.max(ctl),
                    balancer: bal_id.expect("watched implies a balancer"),
                    armed: true,
                }),
                // Sink instances of a gated run report their flush to
                // the scheduler so it can detect job completion.
                sched: match (&sched, &sched_id) {
                    (Some(ss), Some(sid)) if graph.out_edge(StageId(s)).is_none() => {
                        Some((*sid, ss.stage_job[s]))
                    }
                    _ => None,
                },
            };
            sim.install(actor_ids[s][i], Box::new(actor));
            // Gated runs hold source seeds back: the scheduler sends the
            // first `SourceNext` at each job's dispatch instant.
            if stage.is_source && sched.is_none() {
                sim.seed_message(actor_ids[s][i], SimTime::ZERO, Msg::SourceNext);
            }
            if watched_here {
                // First sample lands one period in; the partitioned
                // build seeds the identical grid per owned instance.
                sim.seed_message(
                    actor_ids[s][i],
                    SimTime(cfg.balance.period.as_nanos()),
                    Msg::SampleTick,
                );
            }
            global_idx += 1;
        }
    }

    if active {
        let ctrl = ctrl_id.expect("reserved when active");
        let events = spec.plan.sorted_events();
        // Health steps first, then the precomputed detection verdicts —
        // the same phase order every parallel partition uses, so
        // same-instant steps tiebreak identically. Link-loss steps are
        // never seeded: senders sample the loss timeline directly.
        for (i, ev) in events.iter().enumerate() {
            if matches!(ev, FaultEvent::LinkLoss { .. }) {
                continue;
            }
            sim.seed_message(ctrl, ev.at(), Msg::FaultStep(i));
        }
        for &(node, at) in detected.detections() {
            sim.seed_message(ctrl, at, Msg::Detect(node));
        }
        sim.install(
            ctrl,
            Box::new(FaultController {
                events,
                nodes: nodes.iter().map(|n| Some(n.clone())).collect(),
                flags: flags.clone(),
                instances_on,
                inst_actor,
                inst_downstream,
                ctl,
                metrics: metrics.clone(),
            }),
        );
    }

    // The runtime balancer watches every replicated stage that is fed
    // through a policy with routing freedom (anything but Static) and
    // re-weights its upstream routers by inverse backlog. Snapshot mode
    // (the default) is purely reactive — the watched instances seeded
    // above drive it; the live compat sampler keeps its own timer.
    if let Some(bal) = bal_id {
        let targets: Vec<SnapTarget> = watched
            .iter()
            .map(|&s| SnapTarget {
                stage: s,
                replication: graph.stages()[s].replication,
                senders: graph
                    .edges()
                    .iter()
                    .filter(|e| e.to.0 == s)
                    .flat_map(|e| actor_ids[e.from.0].iter().copied())
                    .collect(),
            })
            .collect();
        sim.install(
            bal,
            Box::new(SnapshotBalancer {
                spec: cfg.balance,
                targets,
                snap: BTreeMap::new(),
                pending: false,
                ctl,
                cur: BTreeMap::new(),
                metrics: metrics.clone(),
            }),
        );
    } else if balance_on && cfg.balance.live {
        let targets: Vec<BalanceTarget> = watched
            .iter()
            .map(|&s| {
                let node_idx = (0..graph.stages()[s].replication)
                    .map(|j| {
                        // Already resolved above for every instance.
                        let nid = placement.node_of(StageId(s), j).expect("validated");
                        node_index(cfg, nid)
                    })
                    .collect();
                BalanceTarget {
                    stage: s,
                    gauge: gauges[s].clone(),
                    weights: weight_handles[s].clone(),
                    node_idx,
                }
            })
            .collect();
        if !targets.is_empty() {
            let bal = sim.reserve_actor();
            sim.seed_message(
                bal,
                SimTime(cfg.balance.period.as_nanos()),
                Msg::BalanceTick,
            );
            sim.install(
                bal,
                Box::new(BalancerActor {
                    spec: cfg.balance,
                    targets,
                    nodes: nodes.clone(),
                    metrics: metrics.clone(),
                    last_seen: SimTime::ZERO,
                }),
            );
        }
    }

    if let Some((agents, coord)) = repair_ids {
        let rs = spec.repair.expect("repair_on implies a spec");
        let timeline = Arc::new(repair_timeline(&spec.plan, &detected, cfg.hosts, cfg.asus));
        let engine = RepairEngine::new(rs, cfg.asus);
        {
            let mut m = metrics.borrow_mut();
            m.repair_src_bytes = vec![0; cfg.asus];
            // Initial mirror: a run whose plan never touches an ASU
            // still reports the placement's (all-at-target) histogram.
            m.replica_hist = engine.hist().to_vec();
        }
        for (d, &agent) in agents.iter().enumerate() {
            sim.install(
                agent,
                Box::new(RepairAgent {
                    ordinal: d,
                    node: nodes[cfg.hosts + d].clone(),
                    coord,
                    agents_base: agents[0].0,
                    queue: VecDeque::new(),
                    busy: false,
                    next_slot: SimTime::ZERO,
                    wbuf: Vec::new(),
                    wflush_at: SimTime::NEVER,
                    pace: rs.pace(),
                    link_rate: cfg.link_bytes_per_sec,
                    latency: cfg.link_latency,
                    ctl,
                    metrics: metrics.clone(),
                }),
            );
        }
        // Timeline steps, then the sampling grid — seeded after the
        // fault controller's events, the exact relative order the
        // parallel build's partition 0 issues.
        for (i, &(at, _)) in timeline.iter().enumerate() {
            sim.seed_message(coord, at, Msg::RepairStep(i));
        }
        if rs.sample_every.as_nanos() > 0 {
            if let Some(&(last, _)) = timeline.last() {
                let mut k = 0u64;
                loop {
                    let at = SimTime(k.saturating_mul(rs.sample_every.as_nanos()));
                    if at > last {
                        break;
                    }
                    sim.seed_message(coord, at, Msg::RepairSampleTick);
                    k += 1;
                }
            }
        }
        sim.install(
            coord,
            Box::new(RepairCoordinator {
                engine,
                timeline,
                agents,
                ctl,
                sampling: rs.sample_every.as_nanos() > 0,
                buf: Vec::new(),
                flush_at: SimTime::NEVER,
                metrics: metrics.clone(),
            }),
        );
    }

    // Multi-tenant gate: seed one `JobArrive` per job at its arrival
    // instant and install the scheduler actor. A lone job arriving at
    // time zero replays the direct path exactly — its `JobArrive` is
    // the only seed at zero, and dispatching enqueues the job's
    // `SourceNext`s in the same stage-major order the loop above seeds.
    let gated = sched.is_some();
    if let Some(ss) = sched {
        let sid = sched_id.expect("reserved alongside the setup");
        debug_assert_eq!(ss.stage_job.len(), graph.stages().len());
        for (j, &at) in ss.arrivals.iter().enumerate() {
            sim.seed_message(sid, at, Msg::JobArrive(j));
        }
        let n_jobs = ss.arrivals.len();
        let sources: Vec<Vec<ActorId>> = ss
            .sources
            .iter()
            .map(|srcs| srcs.iter().map(|&(s, i)| actor_ids[s][i]).collect())
            .collect();
        sim.install(
            sid,
            Box::new(SchedActor {
                gate: ss.gate,
                sources,
                sinks_expected: ss.sinks,
                sinks_seen: vec![0; n_jobs],
                done: vec![false; n_jobs],
                log: ss.log,
                metrics: metrics.clone(),
            }),
        );
    }

    let outcome = sim.run();
    let fatal = metrics.borrow().fatal;
    if let Some(FatalFault { stage, at }) = fatal {
        debug_assert_eq!(outcome, RunOutcome::Stopped);
        let records_processed = metrics.borrow().records_processed;
        return Err(JobError::AllReplicasDown {
            stage,
            at,
            records_processed,
        });
    }
    debug_assert_eq!(outcome, RunOutcome::Drained, "job should drain");
    let dispatched = sim.dispatched();

    // Makespan: last event, all CPU queues drained, all disks quiesced.
    // Under faults, plan events with no application effect (e.g. a
    // recovery after the data drained) should not count: start from the
    // last *application* activity instead of the last dispatch. The
    // same applies to the balancer's trailing sample tick, which lands
    // one period after the job quiesced.
    // Gated runs also start from application activity: a trailing
    // arrival the gate rejected should not stretch the makespan.
    let mut end = if active || balance_on || gated {
        metrics.borrow().last_activity
    } else {
        sim.now()
    };
    for n in &nodes {
        let n = n.borrow();
        end = end.max(n.cpu_free_at()).max(n.disk_quiesce());
    }
    // Flush staged storage (scheduler residue, dirty pool frames): the
    // job only completes once write-behind data is durable. All nodes
    // drain from the same base instant so the order of this loop cannot
    // matter. Skipped entirely for the plain spec (nothing is ever
    // staged) to keep the legacy path byte-identical.
    if !cfg.storage.is_plain() {
        let base = end;
        for n in &nodes {
            end = end.max(n.borrow_mut().storage_drain(base));
        }
    }
    let makespan = end.since(SimTime::ZERO);
    // Release the actors (and with them their Rc clones of the metrics).
    drop(sim);

    let node_reports = nodes
        .iter()
        .map(|n| {
            let n = n.borrow();
            NodeReport {
                id: n.id,
                mean_cpu_util: n.mean_cpu_utilization(end),
                cpu_busy: n.cpu_busy(),
                cpu_series: n.cpu_utilization(end),
                records: n.records_processed(),
                disk: n.disk_counters(),
                per_disk: n.per_disk_stats(),
                per_disk_busy: n.per_disk_busy(),
                pool: n.pool_stats(),
                nic_busy: n.nic_busy(),
                nic_bytes_tx: n.nic_bytes_tx(),
                peak_state_bytes: n.peak_state_bytes(),
                health: n.health(),
            }
        })
        .collect();
    let down_nodes: Vec<NodeId> = nodes
        .iter()
        .filter(|n| n.borrow().is_down())
        .map(|n| n.borrow().id)
        .collect();

    // Every actor was dropped with the simulation, so this Rc should be
    // unique; if an embedding keeps one alive anyway, degrade to a
    // clone-out instead of aborting a run that already finished.
    let m = match Rc::try_unwrap(metrics) {
        Ok(cell) => cell.into_inner(),
        Err(rc) => {
            debug_assert!(false, "metrics still shared after the simulation dropped");
            rc.borrow().clone()
        }
    };
    let stage_work = graph
        .stages()
        .iter()
        .zip(&m.stage_work)
        .map(|(s, &w)| (s.name.clone(), w))
        .collect();
    let queue_stats = graph
        .stages()
        .iter()
        .enumerate()
        .map(|(s, st)| StageQueueStats {
            stage: st.name.clone(),
            instances: gauges[s].borrow().stats(end),
        })
        .collect();

    Ok(EmulationReport {
        makespan,
        nodes: node_reports,
        stage_work,
        stage_records_in: m.stage_records_in,
        stage_usage: m.stage_usage,
        sink_outputs: m.sink_outputs,
        records_processed: m.records_processed,
        mem_violations: m.mem_violations,
        dispatched,
        trace: m.trace,
        down_nodes,
        fault: m.fault,
        queue_stats,
        reweights: m.reweights,
        repair: m.repair,
        repair_trajectory: m.repair_samples,
        replica_hist: m.replica_hist,
        repair_src_bytes: m.repair_src_bytes,
        par: None,
        par_fallback,
    })
}

/// The stages the runtime balancer watches: replicated stages fed
/// through a policy with routing freedom (anything but Static), sorted
/// and deduped.
fn watched_stages<R: Record>(graph: &FlowGraph<R>) -> Vec<usize> {
    let mut watched: Vec<usize> = graph
        .edges()
        .iter()
        .filter(|e| e.routing != lmas_core::RoutingPolicy::Static)
        .map(|e| e.to.0)
        .filter(|&to| graph.stages()[to].replication > 1)
        .collect();
    watched.sort_unstable();
    watched.dedup();
    watched
}

/// Whether the partitioned engine can reproduce this graph's routing
/// draws bit-for-bit. Backlog-sensitive policies (LoadAware, power of
/// two choices) read the live cross-partition queue depths at pick time,
/// which a deferred gauge journal cannot provide; they stay sequential.
/// Single-instance groups never exercise a choice, so any policy is fine
/// there.
fn parallel_eligible<R: Record>(graph: &FlowGraph<R>) -> bool {
    use lmas_core::RoutingPolicy::{RoundRobin, SimpleRandomization, Static};
    graph.edges().iter().all(|e| {
        let group_size = match e.scope {
            lmas_core::RouteScope::Global => graph.stages()[e.to.0].replication,
            lmas_core::RouteScope::PortGroups { group_size } => group_size,
        };
        group_size <= 1 || matches!(e.routing, Static | RoundRobin | SimpleRandomization)
    })
}

/// The partition a node belongs to: hosts are split into `P` contiguous
/// blocks (host `h` → partition `h·P/H`), and ASU `a` is co-located
/// with host `a mod H` — the host that era-style placements pair it
/// with — so the dominant ASU→host data streams stay partition-local
/// and only inter-host traffic (which always pays
/// [`ClusterConfig::link_latency`], the lookahead) crosses threads.
///
/// Blocks, not `h mod P`: placements that stride hosts (e.g. Static
/// mode's `α` sorters at hosts `i·H/α`) collide onto one partition
/// whenever the stride is a multiple of `P`, serialising the run. A
/// contiguous split spreads any stride narrower than a block evenly.
/// (For `H ≤ 2` the two mappings coincide.)
fn node_partition(hosts: usize, nparts: usize, id: NodeId) -> u32 {
    let h = match id {
        NodeId::Host(h) => h,
        NodeId::Asu(a) => a % hosts,
    };
    (h * nparts / hosts) as u32
}

/// One row of the global instance table shared by every partition
/// worker: the sequential build order (stage-major), so index == global
/// actor id == global instance tag.
struct InstSpec {
    stage: usize,
    instance: usize,
    node: NodeId,
    part: u32,
}

/// What one partition hands back after the fleet drains.
struct EmPartOut<R: Record> {
    /// The run's end instant (identical on every partition — it is the
    /// result of a collective max-reduction).
    end: SimTime,
    /// Reports for the nodes this partition owns, keyed by dense node
    /// index for the final hosts-then-ASUs ordering.
    nodes: Vec<(usize, NodeReport)>,
    metrics: Metrics<R>,
    /// Per-stage gauge journals (this partition's share of the gauge
    /// mutations).
    journals: Vec<GaugeJournal>,
}

/// Thread-local state carried from build to finish (`Rc` handles shared
/// with the actors; never crosses threads).
struct EmBuilt<R: Record> {
    /// Owned nodes, indexed by dense node index (`None` = another
    /// partition's node).
    nodes: Vec<Option<Rc<RefCell<NodeRes>>>>,
    journals: Vec<Rc<RefCell<GaugeJournal>>>,
    metrics: Rc<RefCell<Metrics<R>>>,
}

/// Builds and harvests one partition of a parallel emulation.
struct EmWorker<R: Record> {
    part: u32,
    nparts: usize,
    cfg: ClusterConfig,
    spec: FaultSpec,
    /// The fault layer is on (a controller slot exists per partition).
    active: bool,
    /// Shared precomputed fault timelines (identical to sequential's).
    detected: Arc<DetectedTimeline>,
    loss: Arc<LossTimeline>,
    /// Snapshot-balancer watched stages (empty = balancer off).
    watched: Arc<Vec<usize>>,
    /// Minimum cross-node delay — the lookahead and control delay.
    ctl: SimDuration,
    /// Precomputed repair-coordinator event feed (empty when repair is
    /// off; the spec itself rides in `spec.repair`).
    repair_tl: Arc<Vec<(SimTime, RepairEv)>>,
    graph: Arc<FlowGraph<R>>,
    specs: Arc<Vec<InstSpec>>,
    /// First global instance index of each stage.
    stage_base: Arc<Vec<usize>>,
    eos_expected: Arc<Vec<usize>>,
    /// Source inputs for instances this partition owns.
    inputs: BTreeMap<(usize, usize), Vec<Packet<R>>>,
}

impl<R: Record> EmWorker<R> {
    /// Does this partition own dense node index `n`?
    fn owns_node(&self, n: usize) -> bool {
        let id = if n < self.cfg.hosts {
            NodeId::Host(n)
        } else {
            NodeId::Asu(n - self.cfg.hosts)
        };
        node_partition(self.cfg.hosts, self.nparts, id) == self.part
    }
}

impl<R: Record> PartitionWorker<Msg<R>, EmPartOut<R>> for EmWorker<R> {
    type Built = EmBuilt<R>;

    fn build(&mut self, sim: &mut Simulation<Msg<R>>) -> EmBuilt<R> {
        let cfg = &self.cfg;
        let graph = &self.graph;
        let n_inst = self.specs.len();
        let n_ctrl = if self.active { self.nparts } else { 0 };
        let has_bal = !self.watched.is_empty();
        let repair_spec = if self.active { self.spec.repair } else { None };
        let n_repair = if repair_spec.is_some() {
            cfg.asus + 1
        } else {
            0
        };
        sim.reserve_to(n_inst + n_ctrl + usize::from(has_bal) + n_repair);
        // One fault-controller slot per partition right after the
        // instances, then the (partition-0-owned) balancer slot — the
        // same relative layout as the sequential build.
        let bal_actor = ActorId(n_inst + n_ctrl);

        // Every node is instantiated by exactly one partition (reports
        // cover idle nodes too); only owned actors ever touch it.
        let mut nodes: Vec<Option<Rc<RefCell<NodeRes>>>> = Vec::new();
        for id in (0..cfg.hosts)
            .map(NodeId::Host)
            .chain((0..cfg.asus).map(NodeId::Asu))
        {
            nodes.push(
                (node_partition(cfg.hosts, self.nparts, id) == self.part)
                    .then(|| Rc::new(RefCell::new(NodeRes::new(id, cfg)))),
            );
        }
        let journals: Vec<Rc<RefCell<GaugeJournal>>> = graph
            .stages()
            .iter()
            .map(|s| Rc::new(RefCell::new(GaugeJournal::new(s.replication))))
            .collect();
        let metrics = Rc::new(RefCell::new(Metrics::<R>::new(graph.stages().len())));
        if cfg.trace_capacity > 0 {
            // Full capacity per partition: each ring then retains a
            // suffix of its own pushes that is guaranteed to cover its
            // share of the global tail window (see `Trace::merge`).
            metrics.borrow_mut().trace = Trace::enabled(cfg.trace_capacity);
        }
        // Fencing/flush flags: global-length per partition, but only
        // owned instances (and the partition's own controller) ever
        // read or write an entry — instance partition == node partition
        // by construction, so every flag access stays partition-local.
        let flags = Rc::new(RefCell::new(vec![InstFlags::default(); n_inst]));

        for (idx, sp) in self.specs.iter().enumerate() {
            if sp.part != self.part {
                continue;
            }
            let stage = &graph.stages()[sp.stage];
            let down = graph.out_edge(StageId(sp.stage)).map(|e| {
                let to = e.to.0;
                let to_stage = &graph.stages()[to];
                let base = self.stage_base[to];
                let node_ids: Vec<NodeId> = (0..to_stage.replication)
                    .map(|j| self.specs[base + j].node)
                    .collect();
                let node_idx = node_ids.iter().map(|&id| node_index(cfg, id)).collect();
                let capacities = node_ids.iter().map(|&id| node_speed(cfg, id)).collect();
                let group_size = match e.scope {
                    lmas_core::RouteScope::Global => to_stage.replication,
                    lmas_core::RouteScope::PortGroups { group_size } => group_size,
                };
                Downstream {
                    actors: (0..to_stage.replication)
                        .map(|j| ActorId(base + j))
                        .collect(),
                    node_ids,
                    node_idx,
                    capacities,
                    // Same per-sender stream index as the sequential
                    // build (global instance order), so SR draws align.
                    router: Router::new(e.routing, cfg.seed, idx as u64),
                    gauge: GaugeHandle::Journal(journals[to].clone()),
                    // Per-sender weights, fed by `WeightUpdate`s from
                    // the snapshot balancer — the identical channel the
                    // sequential snapshot build uses. Empty until the
                    // first reweight (if ever), like the weightless
                    // sequential vector.
                    weights: Rc::new(RefCell::new(Vec::new())),
                    group_size,
                    dest_stage: to,
                    coded_r: e.coded_group,
                    coded_buf: if e.coded_group > 1 {
                        vec![
                            Vec::new();
                            to_stage.replication.div_ceil(e.coded_group)
                        ]
                    } else {
                        Vec::new()
                    },
                    _marker: std::marker::PhantomData,
                }
            });
            let source_data: VecDeque<Packet<R>> = self
                .inputs
                .remove(&(sp.stage, sp.instance))
                .map(Into::into)
                .unwrap_or_default();
            let actor = InstanceActor {
                stage: sp.stage,
                instance: sp.instance,
                functor: stage.instantiate(sp.instance),
                node: nodes[node_index(cfg, sp.node)]
                    .as_ref()
                    .expect("instance placed on an owned node")
                    .clone(),
                queue: VecDeque::new(),
                pending: None,
                eos_expected: self.eos_expected[sp.stage],
                eos_seen: 0,
                flushed: false,
                down,
                source_data,
                is_source: stage.is_source,
                source_live: true,
                ra: (cfg.storage.pool_frames > 0 && stage.is_source).then(|| RaState {
                    window: cfg.storage.read_ahead + 1,
                    staged: 0,
                    pending: false,
                    eos_sent: false,
                }),
                global_tag: idx as u64,
                epoch: 0,
                my_gauge: (!stage.is_source).then(|| {
                    (
                        GaugeHandle::Journal(journals[sp.stage].clone()),
                        sp.instance,
                    )
                }),
                metrics: metrics.clone(),
                link_rate: cfg.link_bytes_per_sec,
                latency: cfg.link_latency,
                ctl: self.ctl,
                fault: self.active.then(|| InstanceFault {
                    detected: self.detected.clone(),
                    loss: self.loss.clone(),
                    flags: flags.clone(),
                    backoff: self.spec.backoff,
                    fail_fast: self.spec.fail_fast,
                    my_node: node_index(cfg, sp.node),
                    my_global: idx,
                    factory: stage.factory_handle(),
                    // Same global-index-keyed stream as sequential.
                    rng: DetRng::stream(cfg.seed, (1u64 << 62) | idx as u64),
                }),
                sample: (has_bal && self.watched.binary_search(&sp.stage).is_ok()).then(|| {
                    SampleState {
                        period: cfg.balance.period,
                        report_delay: cfg.balance.period.max(self.ctl),
                        balancer: bal_actor,
                        armed: true,
                    }
                }),
                // Gated runs never reach the partitioned engine.
                sched: None,
            };
            let watched_here = actor.sample.is_some();
            sim.install(ActorId(idx), Box::new(actor));
            if stage.is_source {
                // Ascending actor-id order (the iteration order), as the
                // partitioned seeding contract requires.
                sim.seed_message(ActorId(idx), SimTime::ZERO, Msg::SourceNext);
            }
            if watched_here {
                sim.seed_message(
                    ActorId(idx),
                    SimTime(cfg.balance.period.as_nanos()),
                    Msg::SampleTick,
                );
            }
        }

        if self.active {
            // This partition's fault controller: seeded only with the
            // plan steps and detection verdicts whose node it owns, so
            // every event is dispatched exactly once globally and all
            // node/instance touches are partition-local.
            let ctrl = ActorId(n_inst + self.part as usize);
            let events = self.spec.plan.sorted_events();
            for (i, ev) in events.iter().enumerate() {
                if matches!(ev, FaultEvent::LinkLoss { .. }) {
                    continue;
                }
                if self.owns_node(ev.node()) {
                    sim.seed_message(ctrl, ev.at(), Msg::FaultStep(i));
                }
            }
            for &(node, at) in self.detected.detections() {
                if self.owns_node(node) {
                    sim.seed_message(ctrl, at, Msg::Detect(node));
                }
            }
            let total_nodes = cfg.total_nodes();
            let mut instances_on: Vec<Vec<usize>> = vec![Vec::new(); total_nodes];
            let mut inst_actor: Vec<ActorId> = Vec::with_capacity(n_inst);
            let mut inst_downstream: Vec<Option<Vec<(ActorId, usize)>>> =
                Vec::with_capacity(n_inst);
            for (gi, sp) in self.specs.iter().enumerate() {
                instances_on[node_index(cfg, sp.node)].push(gi);
                inst_actor.push(ActorId(gi));
                inst_downstream.push(graph.out_edge(StageId(sp.stage)).map(|e| {
                    let to = e.to.0;
                    let base = self.stage_base[to];
                    (0..graph.stages()[to].replication)
                        .map(|j| {
                            (
                                ActorId(base + j),
                                node_index(cfg, self.specs[base + j].node),
                            )
                        })
                        .collect()
                }));
            }
            sim.install(
                ctrl,
                Box::new(FaultController {
                    events,
                    nodes: nodes.clone(),
                    flags: flags.clone(),
                    instances_on,
                    inst_actor,
                    inst_downstream,
                    ctl: self.ctl,
                    metrics: metrics.clone(),
                }),
            );
        }

        if has_bal && self.part == 0 {
            let targets: Vec<SnapTarget> = self
                .watched
                .iter()
                .map(|&s| SnapTarget {
                    stage: s,
                    replication: graph.stages()[s].replication,
                    senders: graph
                        .edges()
                        .iter()
                        .filter(|e| e.to.0 == s)
                        .flat_map(|e| {
                            let base = self.stage_base[e.from.0];
                            (0..graph.stages()[e.from.0].replication)
                                .map(move |j| ActorId(base + j))
                        })
                        .collect(),
                })
                .collect();
            sim.install(
                bal_actor,
                Box::new(SnapshotBalancer {
                    spec: cfg.balance,
                    targets,
                    snap: BTreeMap::new(),
                    pending: false,
                    ctl: self.ctl,
                    cur: BTreeMap::new(),
                    metrics: metrics.clone(),
                }),
            );
        }

        if let Some(rs) = repair_spec {
            // Same relative layout as the sequential build: agents for
            // ASU ordinals 0..D (each on its node's partition), then the
            // coordinator on partition 0.
            let agents_base = n_inst + n_ctrl + usize::from(has_bal);
            let coord = ActorId(agents_base + cfg.asus);
            metrics.borrow_mut().repair_src_bytes = vec![0; cfg.asus];
            for d in 0..cfg.asus {
                if !self.owns_node(cfg.hosts + d) {
                    continue;
                }
                sim.install(
                    ActorId(agents_base + d),
                    Box::new(RepairAgent {
                        ordinal: d,
                        node: nodes[cfg.hosts + d]
                            .as_ref()
                            .expect("agent placed on an owned ASU")
                            .clone(),
                        coord,
                        agents_base,
                        queue: VecDeque::new(),
                        busy: false,
                        next_slot: SimTime::ZERO,
                        wbuf: Vec::new(),
                        wflush_at: SimTime::NEVER,
                        pace: rs.pace(),
                        link_rate: cfg.link_bytes_per_sec,
                        latency: cfg.link_latency,
                        ctl: self.ctl,
                        metrics: metrics.clone(),
                    }),
                );
            }
            if self.part == 0 {
                let engine = RepairEngine::new(rs, cfg.asus);
                metrics.borrow_mut().replica_hist = engine.hist().to_vec();
                for (i, &(at, _)) in self.repair_tl.iter().enumerate() {
                    sim.seed_message(coord, at, Msg::RepairStep(i));
                }
                if rs.sample_every.as_nanos() > 0 {
                    if let Some(&(last, _)) = self.repair_tl.last() {
                        let mut k = 0u64;
                        loop {
                            let at = SimTime(k.saturating_mul(rs.sample_every.as_nanos()));
                            if at > last {
                                break;
                            }
                            sim.seed_message(coord, at, Msg::RepairSampleTick);
                            k += 1;
                        }
                    }
                }
                sim.install(
                    coord,
                    Box::new(RepairCoordinator {
                        engine,
                        timeline: self.repair_tl.clone(),
                        agents: (0..cfg.asus).map(|d| ActorId(agents_base + d)).collect(),
                        ctl: self.ctl,
                        sampling: rs.sample_every.as_nanos() > 0,
                        buf: Vec::new(),
                        flush_at: SimTime::NEVER,
                        metrics: metrics.clone(),
                    }),
                );
            }
        }
        EmBuilt {
            nodes,
            journals,
            metrics,
        }
    }

    fn finish(self, built: EmBuilt<R>, sim: Simulation<Msg<R>>, ops: &ParOps<'_>) -> EmPartOut<R> {
        // Same horizon algebra as the sequential path, with collective
        // max-reductions standing in for the global scans: last dispatch
        // anywhere, every CPU queue drained, every disk quiesced. Under
        // faults or a balancer, start from the last *application*
        // activity instead of the last dispatch (the sequential rule):
        // the global last activity is the max of the partition-local
        // ones, which the reduction folds in.
        let mut local = if self.active || self.cfg.balance.is_active() {
            built.metrics.borrow().last_activity
        } else {
            sim.now()
        };
        for n in built.nodes.iter().flatten() {
            let n = n.borrow();
            local = local.max(n.cpu_free_at()).max(n.disk_quiesce());
        }
        let mut end = SimTime(ops.allreduce_max(local.as_nanos()));
        if !self.cfg.storage.is_plain() {
            // All nodes drain from the same (agreed) base instant, so
            // partition order cannot matter — same argument as the
            // sequential loop.
            let base = end;
            let mut local = end;
            for n in built.nodes.iter().flatten() {
                local = local.max(n.borrow_mut().storage_drain(base));
            }
            end = SimTime(ops.allreduce_max(local.as_nanos()));
        }
        // Release the actors (and their Rc clones of metrics/journals).
        drop(sim);

        let nodes = built
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(ni, n)| n.as_ref().map(|n| (ni, n)))
            .map(|(ni, n)| {
                let n = n.borrow();
                (
                    ni,
                    NodeReport {
                        id: n.id,
                        mean_cpu_util: n.mean_cpu_utilization(end),
                        cpu_busy: n.cpu_busy(),
                        cpu_series: n.cpu_utilization(end),
                        records: n.records_processed(),
                        disk: n.disk_counters(),
                        per_disk: n.per_disk_stats(),
                        per_disk_busy: n.per_disk_busy(),
                        pool: n.pool_stats(),
                        nic_busy: n.nic_busy(),
                        nic_bytes_tx: n.nic_bytes_tx(),
                        peak_state_bytes: n.peak_state_bytes(),
                        health: n.health(),
                    },
                )
            })
            .collect();
        let metrics = match Rc::try_unwrap(built.metrics) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => {
                debug_assert!(false, "metrics still shared after the simulation dropped");
                rc.borrow().clone()
            }
        };
        let journals = built
            .journals
            .into_iter()
            .map(|j| match Rc::try_unwrap(j) {
                Ok(cell) => cell.into_inner(),
                Err(rc) => rc.borrow().clone(),
            })
            .collect();
        EmPartOut {
            end,
            nodes,
            metrics,
            journals,
        }
    }
}

/// Execute an eligible job on the partitioned engine — including
/// faulted and (snapshot-)balanced runs. The report is equivalent to
/// the sequential path's — same virtual times, same dispatch counts,
/// same merged trace and gauge history — except for
/// [`EmulationReport::par`], which records how the run was parallelized.
fn run_job_parallel<R: Record>(
    cfg: &ClusterConfig,
    spec: &FaultSpec,
    graph: FlowGraph<R>,
    placement: Placement,
    mut inputs: BTreeMap<(usize, usize), Vec<Packet<R>>>,
) -> Result<EmulationReport<R>, JobError> {
    let nparts = cfg.threads.min(cfg.hosts).max(1);
    let active = spec.is_active();
    let total_nodes = cfg.total_nodes();
    // Same control delay the eligibility gate computed: the lookahead.
    let ctl = SimDuration::from_nanos(
        cfg.link_latency.as_nanos()
            + nic_service(cfg.nic_frame_overhead_bytes, cfg.link_bytes_per_sec).as_nanos(),
    );
    let detected = Arc::new(DetectedTimeline::build(
        &spec.plan,
        spec.heartbeat_period,
        spec.heartbeat_timeout,
        total_nodes,
    ));
    let loss = Arc::new(LossTimeline::build(&spec.plan, total_nodes));
    // Eligibility already rejected the live compat sampler, so an
    // active balancer here is snapshot-mode by construction.
    let watched: Arc<Vec<usize>> = Arc::new(if cfg.balance.is_active() {
        watched_stages(&graph)
    } else {
        Vec::new()
    });

    // Global instance table in sequential build order; index == actor id.
    let mut specs: Vec<InstSpec> = Vec::new();
    let mut stage_base: Vec<usize> = Vec::with_capacity(graph.stages().len());
    for (s, stage) in graph.stages().iter().enumerate() {
        stage_base.push(specs.len());
        for i in 0..stage.replication {
            let node = placement
                .node_of(StageId(s), i)
                .ok_or(JobError::UnplacedInstance {
                    stage: s,
                    instance: i,
                })?;
            let part = node_partition(cfg.hosts, nparts, node);
            specs.push(InstSpec {
                stage: s,
                instance: i,
                node,
                part,
            });
        }
    }
    // Actor-ownership table: the instances, then (under faults) one
    // controller slot per partition, then the balancer slot on
    // partition 0.
    let mut owner_vec: Vec<u32> = specs.iter().map(|sp| sp.part).collect();
    if active {
        owner_vec.extend(0..nparts as u32);
    }
    let has_bal = !watched.is_empty();
    if has_bal {
        owner_vec.push(0);
    }
    // Repair slots: each agent on its ASU's partition, the coordinator
    // on partition 0 (it owns the engine and the trajectory record).
    let repair_on = active && spec.repair.is_some();
    if repair_on {
        for d in 0..cfg.asus {
            owner_vec.push(node_partition(cfg.hosts, nparts, NodeId::Asu(d)));
        }
        owner_vec.push(0);
    }
    let repair_tl: Arc<Vec<(SimTime, RepairEv)>> = Arc::new(if repair_on {
        repair_timeline(&spec.plan, &detected, cfg.hosts, cfg.asus)
    } else {
        Vec::new()
    });
    let owners: Arc<Vec<u32>> = Arc::new(owner_vec);
    let eos_expected: Vec<usize> = (0..graph.stages().len())
        .map(|s| {
            let stage = &graph.stages()[s];
            let from_edges: usize = graph
                .edges()
                .iter()
                .filter(|e| e.to == StageId(s))
                .map(|e| graph.stages()[e.from.0].replication)
                .sum();
            from_edges + usize::from(stage.is_source)
        })
        .collect();

    // Split the source inputs by owning partition.
    type PartInputs<R> = BTreeMap<(usize, usize), Vec<Packet<R>>>;
    let mut inputs_by_part: Vec<PartInputs<R>> = (0..nparts).map(|_| BTreeMap::new()).collect();
    for sp in &specs {
        if let Some(v) = inputs.remove(&(sp.stage, sp.instance)) {
            inputs_by_part[sp.part as usize].insert((sp.stage, sp.instance), v);
        }
    }

    let nstages = graph.stages().len();
    let graph = Arc::new(graph);
    let specs = Arc::new(specs);
    let stage_base = Arc::new(stage_base);
    let eos_expected = Arc::new(eos_expected);
    let workers: Vec<EmWorker<R>> = inputs_by_part
        .into_iter()
        .enumerate()
        .map(|(p, inputs)| EmWorker {
            part: p as u32,
            nparts,
            cfg: *cfg,
            spec: spec.clone(),
            active,
            detected: detected.clone(),
            loss: loss.clone(),
            watched: watched.clone(),
            ctl,
            repair_tl: repair_tl.clone(),
            graph: graph.clone(),
            specs: specs.clone(),
            stage_base: stage_base.clone(),
            eos_expected: eos_expected.clone(),
            inputs,
        })
        .collect();

    let outcome = run_partitioned(cfg.seed, owners, ctl, workers);

    // Merge the partition shares back into the sequential report shape.
    let end = outcome.results.first().map_or(SimTime::ZERO, |r| r.end);
    debug_assert!(outcome.results.iter().all(|r| r.end == end));
    let mut node_reports: Vec<(usize, NodeReport)> = Vec::with_capacity(cfg.total_nodes());
    let mut metrics_parts: Vec<Metrics<R>> = Vec::with_capacity(nparts);
    let mut journal_parts: Vec<Vec<GaugeJournal>> = (0..nstages).map(|_| Vec::new()).collect();
    for part in outcome.results {
        node_reports.extend(part.nodes);
        metrics_parts.push(part.metrics);
        for (s, j) in part.journals.into_iter().enumerate() {
            journal_parts[s].push(j);
        }
    }
    node_reports.sort_by_key(|&(ni, _)| ni);
    debug_assert_eq!(
        node_reports.len(),
        cfg.total_nodes(),
        "every node reported once"
    );
    let m = Metrics::merge(metrics_parts);
    // `fail_fast` specs fall back to the sequential engine, so a
    // partitioned run can never hit the global early stop.
    debug_assert!(m.fatal.is_none(), "fatal fault on the partitioned path");
    let down_nodes: Vec<NodeId> = node_reports
        .iter()
        .filter(|(_, r)| matches!(r.health, NodeHealth::Down))
        .map(|(_, r)| r.id)
        .collect();

    let stage_work = graph
        .stages()
        .iter()
        .zip(&m.stage_work)
        .map(|(s, &w)| (s.name.clone(), w))
        .collect();
    let queue_stats = graph
        .stages()
        .iter()
        .enumerate()
        .zip(journal_parts)
        .map(|((_, st), parts)| StageQueueStats {
            stage: st.name.clone(),
            instances: GaugeJournal::replay(parts).stats(end),
        })
        .collect();

    Ok(EmulationReport {
        makespan: end.since(SimTime::ZERO),
        nodes: node_reports.into_iter().map(|(_, r)| r).collect(),
        stage_work,
        stage_records_in: m.stage_records_in,
        stage_usage: m.stage_usage,
        sink_outputs: m.sink_outputs,
        records_processed: m.records_processed,
        mem_violations: m.mem_violations,
        dispatched: outcome.dispatched,
        trace: m.trace,
        down_nodes,
        fault: m.fault,
        queue_stats,
        reweights: m.reweights,
        repair: m.repair,
        repair_trajectory: m.repair_samples,
        replica_hist: m.replica_hist,
        repair_src_bytes: m.repair_src_bytes,
        par: Some(ParRunStats {
            partitions: nparts,
            windows: outcome.windows,
            critical_dispatched: outcome.critical_dispatched,
            remote_messages: outcome.remote_messages,
            window_width_hist: outcome.window_width_hist,
            barrier_wait_hist: outcome.barrier_wait_hist,
        }),
        par_fallback: None,
    })
}
