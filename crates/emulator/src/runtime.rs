//! The dataflow runtime: compiles a (graph, placement) pair onto the
//! emulated cluster and executes it.
//!
//! Every functor instance becomes a simulation actor on its assigned
//! node. Functor code runs *for real* (records are genuinely
//! transformed); virtual time is charged per the declared cost bounds
//! through the node's FCFS CPU resource, so co-located instances contend
//! naturally. Packets crossing nodes serialize on the sender's NIC and
//! arrive one link latency later; source instances stream their input
//! from the local disk model; sink outputs are written back to the local
//! disk and captured for the caller.
//!
//! End-of-stream follows the classic dataflow protocol: an instance that
//! has consumed its input and all upstream EOS marks flushes its functor,
//! forwards the flush outputs, then broadcasts EOS downstream. Because
//! EOS rides the same FCFS NIC as data, it can never overtake packets
//! from the same sender.

use crate::config::ClusterConfig;
use crate::metrics::{Metrics, SinkOutputs};
use crate::node::NodeRes;
use lmas_core::{
    Emit, FlowGraph, Functor, GraphError, NodeId, Packet, Placement, PlacementError, Record,
    Router, StageId,
};
use lmas_sim::{ActorId, Ctx, RunOutcome, SimDuration, SimTime, Simulation, Trace};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// A complete job: what to run, where, and on which data.
pub struct Job<R: Record> {
    /// The dataflow program.
    pub graph: FlowGraph<R>,
    /// Instance → node assignment.
    pub placement: Placement,
    /// External input per **source** stage instance: the packets stored
    /// on that instance's node, streamed in through the disk model.
    pub inputs: BTreeMap<(usize, usize), Vec<Packet<R>>>,
}

/// Why a job could not run.
#[derive(Debug)]
pub enum JobError {
    /// The graph failed validation.
    Graph(GraphError),
    /// The placement failed validation.
    Placement(PlacementError),
    /// Input supplied for an instance that is not a source.
    InputForNonSource {
        /// Stage index.
        stage: usize,
        /// Instance index.
        instance: usize,
    },
    /// A non-source stage has no incoming edge (it would never start).
    DisconnectedStage(StageId),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Graph(e) => write!(f, "graph error: {e}"),
            JobError::Placement(e) => write!(f, "placement error: {e}"),
            JobError::InputForNonSource { stage, instance } => {
                write!(f, "input supplied for non-source stage {stage} instance {instance}")
            }
            JobError::DisconnectedStage(s) => {
                write!(f, "non-source stage {s:?} has no incoming edge")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl From<GraphError> for JobError {
    fn from(e: GraphError) -> Self {
        JobError::Graph(e)
    }
}

impl From<PlacementError> for JobError {
    fn from(e: PlacementError) -> Self {
        JobError::Placement(e)
    }
}

/// Summary of one node after a run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Which node.
    pub id: NodeId,
    /// Mean CPU utilization over the run.
    pub mean_cpu_util: f64,
    /// Total CPU busy time.
    pub cpu_busy: SimDuration,
    /// CPU utilization per [`ClusterConfig::util_bin`] bin.
    pub cpu_series: Vec<f64>,
    /// Records processed on this node.
    pub records: u64,
    /// Disk counters: (reads, writes, bytes read, bytes written).
    pub disk: (u64, u64, u64, u64),
    /// NIC busy time.
    pub nic_busy: SimDuration,
    /// Peak functor-state bytes observed.
    pub peak_state_bytes: usize,
}

/// The result of running a [`Job`].
#[derive(Debug)]
pub struct EmulationReport<R: Record> {
    /// Job completion time (all CPUs drained, disks quiesced).
    pub makespan: SimDuration,
    /// Per-node summaries: hosts first, then ASUs.
    pub nodes: Vec<NodeReport>,
    /// Declared work per stage, with stage names.
    pub stage_work: Vec<(String, lmas_core::Work)>,
    /// Records entering each stage.
    pub stage_records_in: Vec<u64>,
    /// Sink outputs keyed by `(stage, instance)`, `(port, packet)` pairs.
    pub sink_outputs: SinkOutputs<R>,
    /// Total records processed.
    pub records_processed: u64,
    /// Memory-contract violations (empty on a clean run).
    pub mem_violations: Vec<String>,
    /// Simulator events dispatched while running the job.
    pub dispatched: u64,
    /// Event trace of the run (empty unless
    /// [`ClusterConfig::trace_capacity`] asked for one).
    pub trace: Trace,
}

impl<R: Record> EmulationReport<R> {
    /// The captured sink packets in `(stage, instance)` then emission
    /// order, borrowed — no records are copied. Packets arrive here by
    /// move from the sink actors, so the whole capture path is zero-copy.
    pub fn sink_packets(&self) -> impl Iterator<Item = &Packet<R>> {
        self.sink_outputs.values().flatten().map(|(_, p)| p)
    }

    /// All records captured at sinks, in `(stage, instance)` then
    /// emission order. Copies every record; prefer
    /// [`sink_packets`](EmulationReport::sink_packets) for read-only
    /// access or [`into_sink_records`](EmulationReport::into_sink_records)
    /// when the report is no longer needed.
    pub fn sink_records(&self) -> Vec<R> {
        self.sink_packets()
            .flat_map(|p| p.records().iter().cloned())
            .collect()
    }

    /// Consume the report into the flattened sink records. Packets whose
    /// buffers are uniquely owned (the usual case — sinks receive them by
    /// move) give up their records without copying.
    pub fn into_sink_records(self) -> Vec<R> {
        let total: usize = self
            .sink_outputs
            .values()
            .flatten()
            .map(|(_, p)| p.len())
            .sum();
        let mut out = Vec::with_capacity(total);
        for (_, p) in self.sink_outputs.into_values().flatten() {
            out.append(&mut p.into_records());
        }
        out
    }

    /// CPU utilization series of host `i`.
    pub fn host_cpu_series(&self, i: usize) -> &[f64] {
        let n = self
            .nodes
            .iter()
            .position(|nr| nr.id == NodeId::Host(i))
            .expect("host exists");
        &self.nodes[n].cpu_series
    }
}

enum Msg<R: Record> {
    Arrive(Packet<R>),
    Eos,
    Work,
    SourceNext,
}

enum Unit<R: Record> {
    Process(Packet<R>),
    Flush,
}

struct Downstream<R: Record> {
    actors: Vec<ActorId>,
    nodes: Vec<Rc<RefCell<NodeRes>>>,
    capacities: Vec<f64>,
    router: Router,
    gauge: Rc<RefCell<Vec<u64>>>,
    /// Instances per port group (= replication for global scope).
    group_size: usize,
    _marker: std::marker::PhantomData<fn(R)>,
}

struct InstanceActor<R: Record> {
    stage: usize,
    instance: usize,
    functor: Box<dyn Functor<R>>,
    node: Rc<RefCell<NodeRes>>,
    queue: VecDeque<Packet<R>>,
    pending: Option<Unit<R>>,
    eos_expected: usize,
    eos_seen: usize,
    flushed: bool,
    down: Option<Downstream<R>>,
    source_data: VecDeque<Packet<R>>,
    is_source: bool,
    my_gauge: Option<(Rc<RefCell<Vec<u64>>>, usize)>,
    metrics: Rc<RefCell<Metrics<R>>>,
    link_rate: f64,
    latency: SimDuration,
}

impl<R: Record> InstanceActor<R> {
    fn try_start(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if self.pending.is_some() {
            return;
        }
        if let Some(p) = self.queue.pop_front() {
            if let Some((gauge, idx)) = &self.my_gauge {
                let mut g = gauge.borrow_mut();
                g[*idx] = g[*idx].saturating_sub(p.len() as u64);
            }
            let cost = self.functor.cost(&p);
            {
                let mut m = self.metrics.borrow_mut();
                m.stage_work[self.stage] += cost;
                m.stage_records_in[self.stage] += p.len() as u64;
            }
            let grant = self.node.borrow_mut().charge_cpu(ctx.now(), cost);
            self.pending = Some(Unit::Process(p));
            ctx.send_at(ctx.me(), grant.end, Msg::Work);
        } else if self.eos_seen >= self.eos_expected && !self.flushed {
            let cost = self.functor.flush_cost();
            self.metrics.borrow_mut().stage_work[self.stage] += cost;
            let grant = self.node.borrow_mut().charge_cpu(ctx.now(), cost);
            self.pending = Some(Unit::Flush);
            ctx.send_at(ctx.me(), grant.end, Msg::Work);
        }
    }

    fn complete_unit(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        let unit = self.pending.take().expect("Work without a pending unit");
        let mut emit = Emit::new(self.functor.out_ports());
        let mut just_flushed = false;
        match unit {
            Unit::Process(p) => {
                let n = p.len() as u64;
                self.node.borrow_mut().note_records(n);
                let (stage, instance) = (self.stage, self.instance);
                let mut m = self.metrics.borrow_mut();
                m.records_processed += n;
                m.trace.record_with(ctx.now(), || {
                    (format!("s{stage}.i{instance}"), format!("proc {n} recs"))
                });
                drop(m);
                self.functor.process(p, &mut emit);
            }
            Unit::Flush => {
                self.functor.flush(&mut emit);
                self.flushed = true;
                just_flushed = true;
                let (stage, instance) = (self.stage, self.instance);
                self.metrics
                    .borrow_mut()
                    .trace
                    .record_with(ctx.now(), || (format!("s{stage}.i{instance}"), "flush"));
            }
        }
        let state = self.functor.state_bytes();
        {
            let mut node = self.node.borrow_mut();
            node.note_state_bytes(state);
            if state > node.mem_bytes {
                let id = node.id;
                drop(node);
                self.metrics.borrow_mut().note_violation(format!(
                    "stage {} instance {} exceeds {} memory: {} bytes of functor state",
                    self.stage, self.instance, id, state
                ));
            }
        }
        self.route_outputs(ctx, emit.take());
        if just_flushed {
            self.broadcast_eos(ctx);
        }
        self.try_start(ctx);
    }

    fn route_outputs(&mut self, ctx: &mut Ctx<'_, Msg<R>>, outputs: Vec<(usize, Packet<R>)>) {
        match &mut self.down {
            Some(d) => {
                for (port, p) in outputs {
                    // A port is confined to its instance group; the policy
                    // picks within it (group == whole stage for Global).
                    let groups = d.actors.len() / d.group_size;
                    let base = (port % groups) * d.group_size;
                    let dest = base + {
                        let backlog = d.gauge.borrow();
                        d.router.pick(
                            d.group_size,
                            port / groups,
                            &backlog[base..base + d.group_size],
                            &d.capacities[base..base + d.group_size],
                        )
                    };
                    d.gauge.borrow_mut()[dest] += p.len() as u64;
                    let deliver_at = delivery_time(
                        ctx.now(),
                        &self.node,
                        &d.nodes[dest],
                        p.bytes() as u64,
                        self.link_rate,
                        self.latency,
                    );
                    ctx.send_at(d.actors[dest], deliver_at, Msg::Arrive(p));
                }
            }
            None => {
                // Sink: write results to the local disk and capture them.
                let now = ctx.now();
                let mut node = self.node.borrow_mut();
                let mut m = self.metrics.borrow_mut();
                for (port, p) in outputs {
                    node.disk_write(now, p.bytes() as u64);
                    m.sink_outputs
                        .entry((self.stage, self.instance))
                        .or_default()
                        .push((port, p));
                }
            }
        }
    }

    fn broadcast_eos(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if let Some(d) = &mut self.down {
            // EOS rides the NIC (zero payload) so it stays behind data.
            // Every remote mark serializes zero bytes, so one batched NIC
            // charge stands in for the per-destination charges: k
            // zero-length grants at the same instant share one window and
            // leave `free_at` where a lone charge would (the ledger sees
            // no busy time either way).
            let now = ctx.now();
            let my_id = self.node.borrow().id;
            let remote = d
                .nodes
                .iter()
                .filter(|n| n.borrow().id != my_id)
                .count();
            let deliver_remote = if remote > 0 {
                let g = self.node.borrow_mut().charge_nic_batch(
                    now,
                    0,
                    self.link_rate,
                    remote as u64,
                );
                g.end + self.latency
            } else {
                now
            };
            let (stage, instance, fanout) = (self.stage, self.instance, d.actors.len());
            self.metrics
                .borrow_mut()
                .trace
                .record_with(now, || {
                    (format!("s{stage}.i{instance}"), format!("eos -> {fanout}"))
                });
            for i in 0..d.actors.len() {
                let at = if d.nodes[i].borrow().id == my_id {
                    now
                } else {
                    deliver_remote
                };
                ctx.send_at(d.actors[i], at, Msg::Eos);
            }
        }
    }

    fn source_next(&mut self, ctx: &mut Ctx<'_, Msg<R>>) {
        if let Some(p) = self.source_data.pop_front() {
            let ready = self
                .node
                .borrow_mut()
                .disk_read(ctx.now(), p.bytes() as u64);
            ctx.send_at(ctx.me(), ready, Msg::Arrive(p));
            ctx.send_at(ctx.me(), ready, Msg::SourceNext);
        } else {
            ctx.send_at(ctx.me(), ctx.now(), Msg::Eos);
        }
    }
}

fn delivery_time(
    now: SimTime,
    from: &Rc<RefCell<NodeRes>>,
    to: &Rc<RefCell<NodeRes>>,
    bytes: u64,
    link_rate: f64,
    latency: SimDuration,
) -> SimTime {
    let same_node = from.borrow().id == to.borrow().id;
    if same_node {
        now
    } else {
        let grant = from.borrow_mut().charge_nic(now, bytes, link_rate);
        grant.end + latency
    }
}

impl<R: Record> lmas_sim::Actor<Msg<R>> for InstanceActor<R> {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg<R>>, msg: Msg<R>) {
        match msg {
            Msg::Arrive(p) => {
                self.queue.push_back(p);
                self.try_start(ctx);
            }
            Msg::Eos => {
                self.eos_seen += 1;
                debug_assert!(
                    self.eos_seen <= self.eos_expected,
                    "stage {} instance {} saw too many EOS",
                    self.stage,
                    self.instance
                );
                self.try_start(ctx);
            }
            Msg::Work => self.complete_unit(ctx),
            Msg::SourceNext => {
                debug_assert!(self.is_source);
                self.source_next(ctx);
            }
        }
    }
}

/// Run `job` on the cluster described by `cfg`.
pub fn run_job<R: Record>(cfg: &ClusterConfig, job: Job<R>) -> Result<EmulationReport<R>, JobError> {
    let Job {
        graph,
        placement,
        mut inputs,
    } = job;
    graph.validate()?;
    placement.validate(&graph.placement_rows(), cfg.asu_mem_bytes)?;
    for (s, stage) in graph.stages().iter().enumerate() {
        if !stage.is_source && graph.in_degree(StageId(s)) == 0 {
            return Err(JobError::DisconnectedStage(StageId(s)));
        }
    }
    for &(s, i) in inputs.keys() {
        if !graph.stages()[s].is_source {
            return Err(JobError::InputForNonSource { stage: s, instance: i });
        }
    }

    // Nodes: hosts 0..H, then ASUs.
    let nodes: Vec<Rc<RefCell<NodeRes>>> = (0..cfg.hosts)
        .map(NodeId::Host)
        .chain((0..cfg.asus).map(NodeId::Asu))
        .map(|id| Rc::new(RefCell::new(NodeRes::new(id, cfg))))
        .collect();
    let node_rc = |id: NodeId| -> Rc<RefCell<NodeRes>> {
        match id {
            NodeId::Host(i) => nodes[i].clone(),
            NodeId::Asu(i) => nodes[cfg.hosts + i].clone(),
        }
    };

    let mut sim: Simulation<Msg<R>> = Simulation::new(cfg.seed);
    let actor_ids: Vec<Vec<ActorId>> = graph
        .stages()
        .iter()
        .map(|s| (0..s.replication).map(|_| sim.reserve_actor()).collect())
        .collect();
    let gauges: Vec<Rc<RefCell<Vec<u64>>>> = graph
        .stages()
        .iter()
        .map(|s| Rc::new(RefCell::new(vec![0u64; s.replication])))
        .collect();
    let metrics = Rc::new(RefCell::new(Metrics::<R>::new(graph.stages().len())));
    if cfg.trace_capacity > 0 {
        metrics.borrow_mut().trace = Trace::enabled(cfg.trace_capacity);
    }

    // Upstream EOS expectations.
    let eos_expected: Vec<usize> = (0..graph.stages().len())
        .map(|s| {
            let stage = &graph.stages()[s];
            let from_edges: usize = graph
                .edges()
                .iter()
                .filter(|e| e.to == StageId(s))
                .map(|e| graph.stages()[e.from.0].replication)
                .sum();
            from_edges + usize::from(stage.is_source)
        })
        .collect();

    let mut global_idx = 0u64;
    for (s, stage) in graph.stages().iter().enumerate() {
        for i in 0..stage.replication {
            let node_id = placement
                .node_of(StageId(s), i)
                .expect("validated placement");
            let down = graph.out_edge(StageId(s)).map(|e| {
                let to = e.to.0;
                let to_stage = &graph.stages()[to];
                let dnodes: Vec<Rc<RefCell<NodeRes>>> = (0..to_stage.replication)
                    .map(|j| {
                        node_rc(
                            placement
                                .node_of(e.to, j)
                                .expect("validated placement"),
                        )
                    })
                    .collect();
                let capacities = dnodes.iter().map(|n| n.borrow().speed).collect();
                let group_size = match e.scope {
                    lmas_core::RouteScope::Global => to_stage.replication,
                    lmas_core::RouteScope::PortGroups { group_size } => group_size,
                };
                Downstream {
                    actors: actor_ids[to].clone(),
                    nodes: dnodes,
                    capacities,
                    router: Router::new(e.routing, cfg.seed, global_idx),
                    gauge: gauges[to].clone(),
                    group_size,
                    _marker: std::marker::PhantomData,
                }
            });
            let source_data: VecDeque<Packet<R>> = inputs
                .remove(&(s, i))
                .map(Into::into)
                .unwrap_or_default();
            let actor = InstanceActor {
                stage: s,
                instance: i,
                functor: stage.instantiate(i),
                node: node_rc(node_id),
                queue: VecDeque::new(),
                pending: None,
                eos_expected: eos_expected[s],
                eos_seen: 0,
                flushed: false,
                down,
                source_data,
                is_source: stage.is_source,
                my_gauge: (!stage.is_source).then(|| (gauges[s].clone(), i)),
                metrics: metrics.clone(),
                link_rate: cfg.link_bytes_per_sec,
                latency: cfg.link_latency,
            };
            sim.install(actor_ids[s][i], Box::new(actor));
            if stage.is_source {
                sim.seed_message(actor_ids[s][i], SimTime::ZERO, Msg::SourceNext);
            }
            global_idx += 1;
        }
    }

    let outcome = sim.run();
    debug_assert_eq!(outcome, RunOutcome::Drained, "job should drain");
    let dispatched = sim.dispatched();

    // Makespan: last event, all CPU queues drained, all disks quiesced.
    let mut end = sim.now();
    for n in &nodes {
        let n = n.borrow();
        end = end.max(n.cpu_free_at()).max(n.disk_quiesce());
    }
    let makespan = end.since(SimTime::ZERO);
    // Release the actors (and with them their Rc clones of the metrics).
    drop(sim);

    let node_reports = nodes
        .iter()
        .map(|n| {
            let n = n.borrow();
            NodeReport {
                id: n.id,
                mean_cpu_util: n.mean_cpu_utilization(end),
                cpu_busy: n.cpu_busy(),
                cpu_series: n.cpu_utilization(end),
                records: n.records_processed(),
                disk: n.disk_counters(),
                nic_busy: n.nic_busy(),
                peak_state_bytes: n.peak_state_bytes(),
            }
        })
        .collect();

    let m = Rc::try_unwrap(metrics)
        .map_err(|_| ())
        .expect("actors dropped with the simulation")
        .into_inner();
    let stage_work = graph
        .stages()
        .iter()
        .zip(&m.stage_work)
        .map(|(s, &w)| (s.name.clone(), w))
        .collect();

    Ok(EmulationReport {
        makespan,
        nodes: node_reports,
        stage_work,
        stage_records_in: m.stage_records_in,
        sink_outputs: m.sink_outputs,
        records_processed: m.records_processed,
        mem_violations: m.mem_violations,
        dispatched,
        trace: m.trace,
    })
}
