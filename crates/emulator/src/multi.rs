//! Multi-tenant job scheduling on the emulated cluster.
//!
//! [`run_jobs`] merges several independent jobs into one flow graph and
//! runs them **concurrently** on the same emulated nodes, contending
//! for the same CPUs, disks and links in virtual time. Each job arrives
//! at its own instant and passes through a pluggable [`SchedGate`] —
//! the admission/fairness policy — which decides whether it dispatches
//! immediately, waits in the gate's queue, or is rejected. A queued job
//! holds no emulated resources: its sources are only kicked when the
//! gate dispatches it (typically from [`SchedGate::on_completion`] as
//! running jobs finish).
//!
//! The runtime stays deterministic end to end: arrivals are explicit
//! [`SimTime`]s (see [`lmas_sim::ArrivalSpec`]), the gate runs inside
//! the event loop, and a lone job arriving at time zero replays the
//! direct [`run_job`](crate::runtime::run_job) path event for event.
//! Policy lives above this module (in `lmas-sched`); this module only
//! defines the mechanism: merge, gate, dispatch, completion detection,
//! and per-job accounting.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use lmas_core::{Packet, Record, StageId};
use lmas_sim::{SimDuration, SimTime};

use crate::config::ClusterConfig;
use crate::metrics::StageUsage;
use crate::runtime::{run_job_sched, EmulationReport, Job, JobError, SchedSetup};

/// Decision of a [`SchedGate`] for a newly arrived job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Start the job now.
    Dispatch,
    /// Hold the job; the gate must dispatch it later from
    /// [`SchedGate::on_completion`] (or never, if it starves it —
    /// starved jobs simply report as never dispatched).
    Queue,
    /// Turn the job away; it never runs.
    Reject,
}

/// The pluggable admission + fairness policy of a multi-tenant run.
///
/// The gate runs *inside* the deterministic event loop: `on_arrival`
/// fires at each job's arrival instant, `on_completion` when the last
/// sink instance of a running job flushes. Both receive virtual time.
/// The contract is work conservation in the scheduler's sense: any job
/// the gate queues must eventually be returned by some `on_completion`
/// call (jobs it never returns simply never run — the runtime drains
/// and reports them as undispatched rather than deadlocking).
///
/// Determinism: gates must be pure functions of the call sequence —
/// same decisions for the same arrivals/completions in the same order.
/// All policies in `lmas-sched` (FCFS, SPJF, weighted-fair) are.
pub trait SchedGate {
    /// Job `job` arrived at `now`; admit, queue, or reject it.
    fn on_arrival(&mut self, job: usize, now: SimTime) -> GateDecision;
    /// Job `job` completed at `now`; return the queued jobs to dispatch
    /// next (in order).
    fn on_completion(&mut self, job: usize, now: SimTime) -> Vec<usize>;
}

/// What happened to a job at the gate (one log entry per transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEventKind {
    /// The job reached the gate.
    Arrive,
    /// The gate started the job (sources kicked this instant).
    Dispatch,
    /// The gate held the job for later dispatch.
    Queued,
    /// The gate turned the job away.
    Rejected,
    /// The job's last sink instance flushed.
    Complete,
}

/// One scheduler transition, stamped with virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// Which job.
    pub job: usize,
    /// What happened.
    pub kind: SchedEventKind,
}

/// One tenant's job submission for [`run_jobs`].
pub struct TenantJob<R: Record> {
    /// Submitting tenant (dense index, embedding-defined).
    pub tenant: usize,
    /// Virtual arrival instant.
    pub arrival: SimTime,
    /// The job itself (graph, placement, inputs) — exactly what
    /// [`run_job`](crate::runtime::run_job) would take.
    pub job: Job<R>,
}

/// Per-job outcome of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// Submitting tenant.
    pub tenant: usize,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Dispatch instant, if the gate ever started the job.
    pub dispatched_at: Option<SimTime>,
    /// Completion instant (last sink flush), if the job finished.
    pub completed_at: Option<SimTime>,
    /// The gate rejected the job outright.
    pub rejected: bool,
    /// Time spent held at the gate (`dispatched_at - arrival`; zero
    /// when dispatched on arrival or never dispatched).
    pub queue_wait: SimDuration,
    /// Resource usage attributed to this job's stages (grant windows
    /// and byte volumes charged on their behalf).
    pub usage: StageUsage,
    /// This job's `[start, end)` stage range in the merged graph —
    /// indexes into the report's per-stage vectors.
    pub stages: (usize, usize),
}

impl JobStats {
    /// End-to-end latency (arrival → completion), if the job finished.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed_at.map(|c| c.since(self.arrival))
    }
}

/// Result of [`run_jobs`]: the merged-cluster report plus per-job
/// statistics and the full gate transition log.
pub struct MultiJobReport<R: Record> {
    /// The underlying emulation report for the merged run. Per-stage
    /// vectors cover all jobs' stages; [`JobStats::stages`] slices them
    /// per job.
    pub report: EmulationReport<R>,
    /// Per-job outcomes, indexed by submission order.
    pub jobs: Vec<JobStats>,
    /// Every gate transition, in virtual-time order.
    pub events: Vec<SchedEvent>,
}

/// Run several jobs concurrently on one emulated cluster under a
/// scheduler gate.
///
/// The jobs' graphs are merged into a single [`FlowGraph`] (stage
/// indices offset per job, so each job's range is contiguous) and run
/// fault-free on the sequential engine. Job `j` of the gate/report is
/// `jobs[j]`. See the module docs for the scheduling semantics.
///
/// # Errors
///
/// Graph/placement validation errors surface exactly as for a single
/// job. A job with an empty graph is rejected up front (it could never
/// complete).
pub fn run_jobs<R: Record>(
    cfg: &ClusterConfig,
    jobs: Vec<TenantJob<R>>,
    gate: Box<dyn SchedGate>,
) -> Result<MultiJobReport<R>, JobError> {
    assert!(!jobs.is_empty(), "run_jobs needs at least one job");
    let mut graph = lmas_core::FlowGraph::new();
    let mut placement = lmas_core::Placement::new();
    let mut inputs: BTreeMap<(usize, usize), Vec<Packet<R>>> = BTreeMap::new();
    let mut stage_job: Vec<usize> = Vec::new();
    let mut sources: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut sinks: Vec<usize> = Vec::new();
    let mut arrivals: Vec<SimTime> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut tenants: Vec<usize> = Vec::new();

    for (j, tj) in jobs.into_iter().enumerate() {
        let TenantJob {
            tenant,
            arrival,
            job,
        } = tj;
        let Job {
            graph: g,
            placement: p,
            inputs: inp,
        } = job;
        if g.stages().is_empty() {
            return Err(JobError::Graph(lmas_core::GraphError::Empty));
        }
        let base = graph.stages().len();
        // Stages re-add through their shared factory handles: name,
        // ports, kind and replication all re-probe identically, so the
        // merged stage is indistinguishable from the original.
        let mut ids = Vec::with_capacity(g.stages().len());
        for s in g.stages() {
            let f = s.factory_handle();
            let id = if s.is_source {
                graph.add_source_stage(s.replication, move |i| f(i))
            } else {
                graph.add_stage(s.replication, move |i| f(i))
            };
            ids.push(id);
        }
        for e in g.edges() {
            graph.connect_coded(
                ids[e.from.0],
                ids[e.to.0],
                e.routing,
                e.kind,
                e.scope,
                e.coded_group,
            )?;
        }
        let mut srcs = Vec::new();
        let mut sink_insts = 0usize;
        for (s, st) in g.stages().iter().enumerate() {
            let ms = base + s;
            stage_job.push(j);
            for i in 0..st.replication {
                // Unassigned instances surface as the runtime's usual
                // UnplacedInstance error.
                if let Some(n) = p.node_of(StageId(s), i) {
                    placement.assign(StageId(ms), i, n);
                }
            }
            if st.is_source {
                for i in 0..st.replication {
                    srcs.push((ms, i));
                }
            }
            if g.out_edge(StageId(s)).is_none() {
                sink_insts += st.replication;
            }
        }
        for ((s, i), v) in inp {
            inputs.insert((base + s, i), v);
        }
        sources.push(srcs);
        sinks.push(sink_insts);
        arrivals.push(arrival);
        ranges.push((base, graph.stages().len()));
        tenants.push(tenant);
    }

    let log: Rc<RefCell<Vec<SchedEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let setup = SchedSetup {
        arrivals: arrivals.clone(),
        stage_job,
        sources,
        sinks,
        gate,
        log: log.clone(),
    };
    let report = run_job_sched(
        cfg,
        Job {
            graph,
            placement,
            inputs,
        },
        setup,
    )?;
    // The scheduler actor dropped with the simulation, so the log is
    // uniquely owned again.
    let events = Rc::try_unwrap(log)
        .map(|c| c.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());

    let mut out: Vec<JobStats> = ranges
        .iter()
        .zip(&tenants)
        .zip(&arrivals)
        .map(|((&(a, b), &tenant), &arrival)| {
            let mut usage = StageUsage::default();
            for s in a..b {
                usage.absorb(&report.stage_usage[s]);
            }
            JobStats {
                tenant,
                arrival,
                dispatched_at: None,
                completed_at: None,
                rejected: false,
                queue_wait: SimDuration::from_nanos(0),
                usage,
                stages: (a, b),
            }
        })
        .collect();
    for e in &events {
        let js = &mut out[e.job];
        match e.kind {
            SchedEventKind::Dispatch => js.dispatched_at = Some(e.at),
            SchedEventKind::Complete => js.completed_at = Some(e.at),
            SchedEventKind::Rejected => js.rejected = true,
            SchedEventKind::Arrive | SchedEventKind::Queued => {}
        }
    }
    for js in &mut out {
        if let Some(d) = js.dispatched_at {
            js.queue_wait = d.saturating_since(js.arrival);
        }
    }

    Ok(MultiJobReport {
        report,
        jobs: out,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AdmitAll;
    impl SchedGate for AdmitAll {
        fn on_arrival(&mut self, _job: usize, _now: SimTime) -> GateDecision {
            GateDecision::Dispatch
        }
        fn on_completion(&mut self, _job: usize, _now: SimTime) -> Vec<usize> {
            Vec::new()
        }
    }

    /// One-at-a-time FCFS: at most one job runs; the rest queue.
    struct OneAtATime {
        running: bool,
        queue: std::collections::VecDeque<usize>,
    }
    impl SchedGate for OneAtATime {
        fn on_arrival(&mut self, job: usize, _now: SimTime) -> GateDecision {
            if self.running {
                self.queue.push_back(job);
                GateDecision::Queue
            } else {
                self.running = true;
                GateDecision::Dispatch
            }
        }
        fn on_completion(&mut self, _job: usize, _now: SimTime) -> Vec<usize> {
            match self.queue.pop_front() {
                Some(next) => vec![next],
                None => {
                    self.running = false;
                    Vec::new()
                }
            }
        }
    }

    struct RejectAll;
    impl SchedGate for RejectAll {
        fn on_arrival(&mut self, _job: usize, _now: SimTime) -> GateDecision {
            GateDecision::Reject
        }
        fn on_completion(&mut self, _job: usize, _now: SimTime) -> Vec<usize> {
            Vec::new()
        }
    }

    use lmas_core::functor::lib::MapFunctor;
    use lmas_core::{
        generate_rec8, packetize, EdgeKind, KeyDist, NodeId, Rec8, RoutingPolicy, Work,
    };

    fn tiny_job(records: u64) -> Job<Rec8> {
        let mut g = lmas_core::FlowGraph::new();
        let idf = || |_: usize| -> Box<dyn lmas_core::Functor<Rec8>> {
            Box::new(MapFunctor::new("id", Work::ZERO, |r: Rec8| r))
        };
        let src = g.add_source_stage(1, idf());
        let sink = g.add_stage(1, idf());
        g.connect(src, sink, RoutingPolicy::Static, EdgeKind::Stream)
            .expect("valid edge");
        let mut p = lmas_core::Placement::new();
        p.assign(src, 0, NodeId::Asu(0));
        p.assign(sink, 0, NodeId::Host(0));
        let mut inputs = BTreeMap::new();
        inputs.insert(
            (0usize, 0usize),
            packetize(generate_rec8(records, KeyDist::Uniform, 1), 32),
        );
        Job {
            graph: g,
            placement: p,
            inputs,
        }
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::era_2002(1, 2, 8.0)
    }

    #[test]
    fn single_job_matches_direct_run() {
        let cfg = cfg();
        let direct =
            crate::runtime::run_job(&cfg, tiny_job(32)).expect("direct run succeeds");
        let multi = run_jobs(
            &cfg,
            vec![TenantJob {
                tenant: 0,
                arrival: SimTime::ZERO,
                job: tiny_job(32),
            }],
            Box::new(AdmitAll),
        )
        .expect("gated run succeeds");
        // Byte-identical observables: only the dispatch count differs
        // (the gated run adds JobArrive/SinkFlushed bookkeeping events).
        assert_eq!(multi.report.makespan, direct.makespan);
        assert_eq!(multi.report.records_processed, direct.records_processed);
        assert_eq!(multi.report.sink_outputs, direct.sink_outputs);
        assert_eq!(multi.report.stage_records_in, direct.stage_records_in);
        assert_eq!(multi.jobs.len(), 1);
        assert_eq!(multi.jobs[0].dispatched_at, Some(SimTime::ZERO));
        assert!(multi.jobs[0].completed_at.is_some());
        assert!(multi.jobs[0].usage.disk_read_bytes > 0);
    }

    #[test]
    fn queued_job_waits_for_the_running_one() {
        let cfg = cfg();
        let gate = OneAtATime {
            running: false,
            queue: std::collections::VecDeque::new(),
        };
        let r = run_jobs(
            &cfg,
            vec![
                TenantJob {
                    tenant: 0,
                    arrival: SimTime::ZERO,
                    job: tiny_job(64),
                },
                TenantJob {
                    tenant: 1,
                    arrival: SimTime(1),
                    job: tiny_job(64),
                },
            ],
            Box::new(gate),
        )
        .expect("gated run succeeds");
        let (a, b) = (&r.jobs[0], &r.jobs[1]);
        assert_eq!(a.dispatched_at, Some(SimTime::ZERO));
        // Job 1 dispatches exactly when job 0 completes.
        assert_eq!(b.dispatched_at, a.completed_at);
        assert!(b.queue_wait > SimDuration::from_nanos(0));
        assert!(b.completed_at.expect("finishes") > a.completed_at.expect("finishes"));
    }

    #[test]
    fn rejected_job_never_runs_and_uses_nothing() {
        let cfg = cfg();
        let r = run_jobs(
            &cfg,
            vec![TenantJob {
                tenant: 0,
                arrival: SimTime(5),
                job: tiny_job(16),
            }],
            Box::new(RejectAll),
        )
        .expect("run drains");
        let js = &r.jobs[0];
        assert!(js.rejected);
        assert_eq!(js.dispatched_at, None);
        assert_eq!(js.completed_at, None);
        assert_eq!(js.usage, StageUsage::default());
        // A rejected trailing arrival must not stretch the makespan.
        assert_eq!(r.report.makespan, SimDuration::from_nanos(0));
    }

    #[test]
    fn concurrent_jobs_contend_and_attribute_usage() {
        let cfg = cfg();
        // Both jobs admitted at once on the same nodes: each finishes
        // later than it would alone, and usage splits between them.
        let alone = run_jobs(
            &cfg,
            vec![TenantJob {
                tenant: 0,
                arrival: SimTime::ZERO,
                job: tiny_job(64),
            }],
            Box::new(AdmitAll),
        )
        .expect("solo run");
        let both = run_jobs(
            &cfg,
            vec![
                TenantJob {
                    tenant: 0,
                    arrival: SimTime::ZERO,
                    job: tiny_job(64),
                },
                TenantJob {
                    tenant: 1,
                    arrival: SimTime::ZERO,
                    job: tiny_job(64),
                },
            ],
            Box::new(AdmitAll),
        )
        .expect("contended run");
        let solo = alone.jobs[0].latency().expect("finished");
        for js in &both.jobs {
            let lat = js.latency().expect("finished");
            assert!(
                lat >= solo,
                "contended latency {lat:?} below solo {solo:?}"
            );
            assert!(js.usage.cpu_busy_ns > 0);
            assert_eq!(
                js.usage.disk_read_bytes,
                alone.jobs[0].usage.disk_read_bytes
            );
        }
        // Attribution is conserved: per-job usage sums to the totals.
        let read: u64 = both.jobs.iter().map(|j| j.usage.disk_read_bytes).sum();
        let whole: u64 = both
            .report
            .stage_usage
            .iter()
            .map(|u| u.disk_read_bytes)
            .sum();
        assert_eq!(read, whole);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = cfg();
        let mk = || {
            let gate = OneAtATime {
                running: false,
                queue: std::collections::VecDeque::new(),
            };
            run_jobs(
                &cfg,
                vec![
                    TenantJob {
                        tenant: 0,
                        arrival: SimTime::ZERO,
                        job: tiny_job(48),
                    },
                    TenantJob {
                        tenant: 1,
                        arrival: SimTime(100),
                        job: tiny_job(48),
                    },
                    TenantJob {
                        tenant: 0,
                        arrival: SimTime(200),
                        job: tiny_job(48),
                    },
                ],
                Box::new(gate),
            )
            .expect("run succeeds")
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events, b.events);
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.report.dispatched, b.report.dispatched);
        assert_eq!(a.jobs, b.jobs);
    }
}
