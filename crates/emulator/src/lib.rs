//! # lmas-emulator — timing-accurate emulation of active storage clusters
//!
//! Implements the paper's Section 5 methodology: application functors run
//! for real while an embedded discrete-event simulator (from `lmas-sim`)
//! determines the delays their computation, disk I/O, and communication
//! would impose on an emulated cluster of `H` hosts and `D` ASUs with CPU
//! ratio `c`.
//!
//! - [`config`]: cluster parameters with 2002-era defaults;
//! - [`node`]: per-node CPU/NIC/disk resources;
//! - [`runtime`]: compiles a (`FlowGraph`, `Placement`) pair into
//!   simulation actors and runs it ([`run_job`],
//!   [`run_job_with_faults`]);
//! - [`fault`]: deterministic fault injection — crash/degrade/lossy
//!   nodes, heartbeat failure detection, retrying delivery;
//! - [`balance`]: feedback-driven runtime load balancing — periodic
//!   virtual-time sampling of queue depths and CPU backlog that
//!   re-weights replica routing (off by default);
//! - [`multi`]: multi-tenant scheduling — several jobs merged onto one
//!   cluster, gated by a pluggable admission/fairness policy
//!   ([`run_jobs`]);
//! - [`metrics`], [`report`]: instrumentation and rendering.

#![warn(missing_docs)]

pub mod balance;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod multi;
pub mod node;
pub mod repair;
pub mod report;
pub mod runtime;

pub use balance::BalanceSpec;
pub use config::ClusterConfig;
pub use fault::{asu_index, node_index, FatalFault, FaultSpec, FaultStats, NodeHealth};
pub use metrics::{QueueStat, StageGauge, StageQueueStats, StageUsage};
pub use multi::{
    run_jobs, GateDecision, JobStats, MultiJobReport, SchedEvent, SchedEventKind, SchedGate,
    TenantJob,
};
pub use node::NodeRes;
pub use repair::{
    mean_copies, mean_field_trajectory, MeanFieldParams, RepairSample, RepairSpec, RepairStats,
};
// Storage counter types re-exported from their single source of truth in
// `lmas-storage` (node reports embed them).
pub use lmas_storage::{BteStats, PoolStats, StorageSpec};
pub use report::{render_summary, render_utilization_csv};
pub use runtime::{
    run_job, run_job_with_faults, EmulationReport, Job, JobError, NodeReport, ParRunStats,
};
