//! Run-wide metrics collected while a job executes.
//!
//! Section 5: "The emulator is instrumented to report application
//! progress, overall runtime, and resource utilization for each host and
//! ASU in the target (emulated) system as the application executes."
//! Per-node utilization lives in the node resources; this module holds
//! the job-level counters: per-stage declared work, sink outputs,
//! progress, and contract violations.

use crate::fault::{FatalFault, FaultStats};
use lmas_core::{Packet, Record, Work};
use lmas_sim::{SimTime, Trace};
use std::collections::BTreeMap;

/// Maximum memory-violation notes retained (they repeat).
const MAX_VIOLATION_NOTES: usize = 16;

/// Sink captures keyed by `(stage, instance)`; each entry is a
/// `(port, packet)` pair in emission order.
pub type SinkOutputs<R> = BTreeMap<(usize, usize), Vec<(usize, Packet<R>)>>;

/// Mutable metrics shared by all instance actors of a job.
///
/// `Clone` exists for graceful degradation: if an early-terminated run
/// leaves an actor alive holding a reference, the runtime clones the
/// contents out instead of panicking on `Rc::try_unwrap`.
#[derive(Debug, Clone)]
pub struct Metrics<R: Record> {
    /// Declared [`Work`] charged per stage (indexed by stage id).
    pub stage_work: Vec<Work>,
    /// Records entering each stage.
    pub stage_records_in: Vec<u64>,
    /// Outputs of sink stages (stages with no outgoing edge), keyed by
    /// `(stage, instance)`; each entry is `(port, packet)` in emission
    /// order.
    pub sink_outputs: SinkOutputs<R>,
    /// Total records processed across all stages (progress).
    pub records_processed: u64,
    /// Functor-state memory contract violations observed (bounded list).
    pub mem_violations: Vec<String>,
    /// Event trace of the run (disabled unless the cluster config asks
    /// for one; recording through [`Trace::record_with`] is free when
    /// disabled).
    pub trace: Trace,
    /// Fault-layer activity counters (all zero on a fault-free run).
    pub fault: FaultStats,
    /// Set when a delivery failure was fatal (`fail_fast`); the runtime
    /// surfaces it as `JobError::AllReplicasDown`.
    pub fatal: Option<FatalFault>,
    /// Last instant any *application* progress happened (processing,
    /// source reads, sink writes). Fault-injected runs use this for the
    /// makespan so that late plan events (e.g. a recovery scheduled
    /// after the job drained) don't inflate it.
    pub last_activity: SimTime,
    violations_total: u64,
}

impl<R: Record> Metrics<R> {
    /// Metrics for a job of `stages` stages.
    pub fn new(stages: usize) -> Metrics<R> {
        Metrics {
            stage_work: vec![Work::ZERO; stages],
            stage_records_in: vec![0; stages],
            sink_outputs: BTreeMap::new(),
            records_processed: 0,
            mem_violations: Vec::new(),
            trace: Trace::disabled(),
            fault: FaultStats::default(),
            fatal: None,
            last_activity: SimTime::ZERO,
            violations_total: 0,
        }
    }

    /// Note application progress at `now` (monotone max).
    pub fn note_activity(&mut self, now: SimTime) {
        self.last_activity = self.last_activity.max(now);
    }

    /// Note a memory violation (bounded retention).
    pub fn note_violation(&mut self, msg: String) {
        self.violations_total += 1;
        if self.mem_violations.len() < MAX_VIOLATION_NOTES {
            self.mem_violations.push(msg);
        }
    }

    /// Total violations seen (including ones not retained).
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }

    /// Total declared work across stages.
    pub fn total_work(&self) -> Work {
        self.stage_work
            .iter()
            .fold(Work::ZERO, |acc, &w| acc + w)
    }

    /// The captured sink packets in `(stage, instance)` then emission
    /// order, borrowed — no records are copied.
    pub fn sink_packets(&self) -> impl Iterator<Item = &Packet<R>> {
        self.sink_outputs.values().flatten().map(|(_, p)| p)
    }

    /// All records captured at sinks, flattened in `(stage, instance)`
    /// then emission order. Copies every record; prefer
    /// [`sink_packets`](Metrics::sink_packets) for read-only access.
    pub fn sink_records(&self) -> Vec<R> {
        self.sink_packets()
            .flat_map(|p| p.records().iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::Rec8;

    #[test]
    fn work_accumulates_per_stage() {
        let mut m: Metrics<Rec8> = Metrics::new(2);
        m.stage_work[0] += Work::compares(5);
        m.stage_work[1] += Work::moves(3);
        let t = m.total_work();
        assert_eq!(t.compares, 5);
        assert_eq!(t.record_moves, 3);
    }

    #[test]
    fn violation_list_is_bounded() {
        let mut m: Metrics<Rec8> = Metrics::new(1);
        for i in 0..100 {
            m.note_violation(format!("v{i}"));
        }
        assert_eq!(m.mem_violations.len(), MAX_VIOLATION_NOTES);
        assert_eq!(m.violations_total(), 100);
    }

    #[test]
    fn sink_records_flatten_in_order() {
        let mut m: Metrics<Rec8> = Metrics::new(1);
        let p1 = Packet::new(vec![Rec8 { key: 1, tag: 0 }]);
        let p2 = Packet::new(vec![Rec8 { key: 2, tag: 1 }, Rec8 { key: 3, tag: 2 }]);
        m.sink_outputs.insert((0, 0), vec![(0, p1)]);
        m.sink_outputs.insert((0, 1), vec![(0, p2)]);
        let recs = m.sink_records();
        assert_eq!(recs.iter().map(|r| r.key).collect::<Vec<_>>(), [1, 2, 3]);
    }
}
