//! Run-wide metrics collected while a job executes.
//!
//! Section 5: "The emulator is instrumented to report application
//! progress, overall runtime, and resource utilization for each host and
//! ASU in the target (emulated) system as the application executes."
//! Per-node utilization lives in the node resources; this module holds
//! the job-level counters: per-stage declared work, sink outputs,
//! progress, and contract violations.

use crate::fault::{FatalFault, FaultStats};
use crate::repair::{RepairSample, RepairStats};
use lmas_core::{Packet, Record, Work};
use lmas_sim::{SimTime, Trace};
use std::collections::BTreeMap;

/// Per-stage backlog gauge with time-weighted statistics.
///
/// The routers read the instantaneous per-instance depths to make
/// load-aware picks; every mutation is stamped with the virtual instant
/// it happens at, so the gauge also integrates depth over time. That
/// yields the *time-weighted mean* queue depth — the signal the runtime
/// balancer samples and the run report surfaces next to utilization —
/// using pure integer arithmetic (a `u128` record·nanosecond integral)
/// so reports are bit-reproducible.
#[derive(Debug, Clone)]
pub struct StageGauge {
    depth: Vec<u64>,
    last: Vec<SimTime>,
    integral: Vec<u128>,
    peak: Vec<u64>,
}

impl StageGauge {
    /// A gauge over `n` instances, all empty at time zero.
    pub fn new(n: usize) -> StageGauge {
        StageGauge {
            depth: vec![0; n],
            last: vec![SimTime::ZERO; n],
            integral: vec![0; n],
            peak: vec![0; n],
        }
    }

    /// Accumulate depth·time up to `now` for instance `i`.
    fn advance(&mut self, i: usize, now: SimTime) {
        let dt = now.saturating_since(self.last[i]).as_nanos();
        self.integral[i] += self.depth[i] as u128 * dt as u128;
        self.last[i] = self.last[i].max(now);
    }

    /// Records were routed to instance `i` at `now`.
    pub fn add(&mut self, i: usize, records: u64, now: SimTime) {
        self.advance(i, now);
        self.depth[i] += records;
        self.peak[i] = self.peak[i].max(self.depth[i]);
    }

    /// Instance `i` started (or lost) records at `now`.
    pub fn sub(&mut self, i: usize, records: u64, now: SimTime) {
        self.advance(i, now);
        self.depth[i] = self.depth[i].saturating_sub(records);
    }

    /// Instance `i`'s queue vanished at `now` (node crash).
    pub fn clear(&mut self, i: usize, now: SimTime) {
        self.advance(i, now);
        self.depth[i] = 0;
    }

    /// Instantaneous per-instance depths (what the routers consult).
    pub fn depths(&self) -> &[u64] {
        &self.depth
    }

    /// Per-instance statistics over the horizon `[0, end]`.
    pub fn stats(&self, end: SimTime) -> Vec<QueueStat> {
        let horizon = end.as_nanos();
        (0..self.depth.len())
            .map(|i| {
                let tail = end.saturating_since(self.last[i]).as_nanos();
                let area = self.integral[i] + self.depth[i] as u128 * tail as u128;
                QueueStat {
                    mean_depth: if horizon > 0 {
                        area as f64 / horizon as f64
                    } else {
                        0.0
                    },
                    peak_depth: self.peak[i],
                    final_depth: self.depth[i],
                }
            })
            .collect()
    }
}

/// What a recorded gauge mutation does on replay.
#[derive(Debug, Clone, Copy)]
enum GaugeOpKind {
    /// Add `records` to the instance's depth.
    Add,
    /// Subtract `records` from the instance's depth.
    Sub,
    /// Zero the instance's depth (node crash dropping its queue).
    Clear,
}

/// One recorded gauge mutation (see [`GaugeJournal`]).
#[derive(Debug, Clone, Copy)]
struct GaugeOp {
    at: SimTime,
    /// Dispatch ordering key `(sched, packed)` of the event that caused
    /// the mutation ([`lmas_sim::Ctx::par_key`]).
    key: (u64, u64),
    inst: usize,
    kind: GaugeOpKind,
    records: u64,
}

/// Deferred [`StageGauge`]: partitioned runs record gauge mutations with
/// their dispatch keys instead of mutating a shared gauge, then
/// [`GaugeJournal::replay`] merges the per-partition journals in exact
/// sequential dispatch order. `depths()` returns all-zero backlogs — the
/// partitioned runtime only engages for routing policies that never read
/// the backlog, so the zeros are placeholders for slice arithmetic, not
/// a signal.
#[derive(Debug, Clone)]
pub struct GaugeJournal {
    zeros: Vec<u64>,
    ops: Vec<GaugeOp>,
}

impl GaugeJournal {
    /// A journal for a stage of `n` instances.
    pub fn new(n: usize) -> GaugeJournal {
        GaugeJournal {
            zeros: vec![0; n],
            ops: Vec::new(),
        }
    }

    /// Records were routed to instance `i` at `now`.
    pub fn add(&mut self, i: usize, records: u64, now: SimTime, key: (u64, u64)) {
        self.ops.push(GaugeOp {
            at: now,
            key,
            inst: i,
            kind: GaugeOpKind::Add,
            records,
        });
    }

    /// Instance `i` started records at `now`.
    pub fn sub(&mut self, i: usize, records: u64, now: SimTime, key: (u64, u64)) {
        self.ops.push(GaugeOp {
            at: now,
            key,
            inst: i,
            kind: GaugeOpKind::Sub,
            records,
        });
    }

    /// Instance `i`'s queue vanished at `now` (node crash).
    pub fn clear(&mut self, i: usize, now: SimTime, key: (u64, u64)) {
        self.ops.push(GaugeOp {
            at: now,
            key,
            inst: i,
            kind: GaugeOpKind::Clear,
            records: 0,
        });
    }

    /// Placeholder depths (all zero; see the type docs).
    pub fn depths(&self) -> &[u64] {
        &self.zeros
    }

    /// Merge per-partition journals into the [`StageGauge`] an equivalent
    /// sequential run would have produced: all mutations are replayed in
    /// `(time, dispatch key)` order — the partitioned engine's total
    /// dispatch order — with a stable sort, so mutations within one
    /// dispatch keep their program order and the time-weighted integral,
    /// peak, and final depths come out bit-identical.
    pub fn replay(parts: Vec<GaugeJournal>) -> StageGauge {
        let n = parts.first().map_or(0, |j| j.zeros.len());
        debug_assert!(parts.iter().all(|j| j.zeros.len() == n));
        let mut ops: Vec<GaugeOp> = parts.into_iter().flat_map(|j| j.ops).collect();
        ops.sort_by_key(|o| (o.at, o.key));
        let mut g = StageGauge::new(n);
        for o in ops {
            match o.kind {
                GaugeOpKind::Add => g.add(o.inst, o.records, o.at),
                GaugeOpKind::Sub => g.sub(o.inst, o.records, o.at),
                GaugeOpKind::Clear => g.clear(o.inst, o.at),
            }
        }
        g
    }
}

/// Time-weighted queue statistics for one stage instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStat {
    /// Mean queued records over the run (depth·time / makespan).
    pub mean_depth: f64,
    /// Peak queued records.
    pub peak_depth: u64,
    /// Records still queued when the run ended (nonzero only after a
    /// fatal fault).
    pub final_depth: u64,
}

/// Queue statistics for every instance of one stage.
#[derive(Debug, Clone)]
pub struct StageQueueStats {
    /// Stage name (from the flow graph).
    pub stage: String,
    /// One entry per instance, in instance order.
    pub instances: Vec<QueueStat>,
}

impl StageQueueStats {
    /// Largest peak depth across this stage's instances.
    pub fn max_peak(&self) -> u64 {
        self.instances
            .iter()
            .map(|q| q.peak_depth)
            .max()
            .unwrap_or(0)
    }
}

/// Resource attribution of one stage, summed over its instances.
///
/// The FCFS node resources are shared, so attribution records the
/// *grant windows and byte volumes charged on a stage's behalf*: CPU
/// busy/wait time from its processing and flush grants, the bytes its
/// sources pulled off disk (with the read latency they waited), the
/// bytes its sinks and coded side-information wrote, and the payload
/// bytes it put on the wire (zero-byte EOS marks excluded). Purely
/// observational — accumulating it never moves virtual time — and
/// additive across partitions, so sequential and partitioned runs
/// report identical totals. The multi-tenant scheduler rolls these up
/// per job (stages of a merged graph are contiguous per job).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageUsage {
    /// CPU service time granted (ns).
    pub cpu_busy_ns: u64,
    /// CPU queueing time: grant start minus request instant (ns).
    pub cpu_wait_ns: u64,
    /// Bytes streamed from disk by this stage's source instances.
    pub disk_read_bytes: u64,
    /// Disk read latency waited by this stage's sources (ns).
    pub disk_wait_ns: u64,
    /// Bytes written to disk (sink captures plus coded side-information).
    pub disk_write_bytes: u64,
    /// Payload bytes put on the wire by this stage's senders.
    pub nic_bytes: u64,
    /// NIC serialization time of those payloads (ns).
    pub nic_busy_ns: u64,
}

impl StageUsage {
    /// Element-wise accumulate (partition merge / per-job roll-up).
    pub fn absorb(&mut self, other: &StageUsage) {
        self.cpu_busy_ns += other.cpu_busy_ns;
        self.cpu_wait_ns += other.cpu_wait_ns;
        self.disk_read_bytes += other.disk_read_bytes;
        self.disk_wait_ns += other.disk_wait_ns;
        self.disk_write_bytes += other.disk_write_bytes;
        self.nic_bytes += other.nic_bytes;
        self.nic_busy_ns += other.nic_busy_ns;
    }
}

/// Maximum memory-violation notes retained (they repeat).
const MAX_VIOLATION_NOTES: usize = 16;

/// Sink captures keyed by `(stage, instance)`; each entry is a
/// `(port, packet)` pair in emission order.
pub type SinkOutputs<R> = BTreeMap<(usize, usize), Vec<(usize, Packet<R>)>>;

/// Mutable metrics shared by all instance actors of a job.
///
/// `Clone` exists for graceful degradation: if an early-terminated run
/// leaves an actor alive holding a reference, the runtime clones the
/// contents out instead of panicking on `Rc::try_unwrap`.
#[derive(Debug, Clone)]
pub struct Metrics<R: Record> {
    /// Declared [`Work`] charged per stage (indexed by stage id).
    pub stage_work: Vec<Work>,
    /// Records entering each stage.
    pub stage_records_in: Vec<u64>,
    /// Resource attribution per stage (indexed by stage id).
    pub stage_usage: Vec<StageUsage>,
    /// Outputs of sink stages (stages with no outgoing edge), keyed by
    /// `(stage, instance)`; each entry is `(port, packet)` in emission
    /// order.
    pub sink_outputs: SinkOutputs<R>,
    /// Total records processed across all stages (progress).
    pub records_processed: u64,
    /// Functor-state memory contract violations observed (bounded list).
    pub mem_violations: Vec<String>,
    /// Event trace of the run (disabled unless the cluster config asks
    /// for one; recording through [`Trace::record_with`] is free when
    /// disabled).
    pub trace: Trace,
    /// Fault-layer activity counters (all zero on a fault-free run).
    pub fault: FaultStats,
    /// Set when a delivery failure was fatal (`fail_fast`); the runtime
    /// surfaces it as `JobError::AllReplicasDown`.
    pub fatal: Option<FatalFault>,
    /// Last instant any *application* progress happened (processing,
    /// source reads, sink writes). Fault-injected runs use this for the
    /// makespan so that late plan events (e.g. a recovery scheduled
    /// after the job drained) don't inflate it.
    pub last_activity: SimTime,
    /// Times the runtime balancer re-weighted a replica router (zero
    /// when the balancer is off or never left its deadband).
    pub reweights: u64,
    /// Repair-engine activity counters (quiet unless the fault spec
    /// carries a [`RepairSpec`](crate::repair::RepairSpec)). Only the
    /// coordinator's partition writes these; merge absorbs.
    pub repair: RepairStats,
    /// Replica-distribution trajectory samples (coordinator partition
    /// only; ascending in time).
    pub repair_samples: Vec<RepairSample>,
    /// Final replica histogram, `hist[k]` = blocks with `k` available
    /// copies (empty when repair is off).
    pub replica_hist: Vec<u64>,
    /// Bytes of repair traffic *sourced* per ASU ordinal (the pacing
    /// cap audit; summed across partitions).
    pub repair_src_bytes: Vec<u64>,
    violations_total: u64,
    /// Dispatch ordering key per retained violation note (parallel runs
    /// only; `merge` uses it to keep notes in sequential order).
    viol_keys: Vec<(SimTime, (u64, u64))>,
}

impl<R: Record> Metrics<R> {
    /// Metrics for a job of `stages` stages.
    pub fn new(stages: usize) -> Metrics<R> {
        Metrics {
            stage_work: vec![Work::ZERO; stages],
            stage_records_in: vec![0; stages],
            stage_usage: vec![StageUsage::default(); stages],
            sink_outputs: BTreeMap::new(),
            records_processed: 0,
            mem_violations: Vec::new(),
            trace: Trace::disabled(),
            fault: FaultStats::default(),
            fatal: None,
            last_activity: SimTime::ZERO,
            reweights: 0,
            repair: RepairStats::default(),
            repair_samples: Vec::new(),
            replica_hist: Vec::new(),
            repair_src_bytes: Vec::new(),
            violations_total: 0,
            viol_keys: Vec::new(),
        }
    }

    /// Note application progress at `now` (monotone max).
    pub fn note_activity(&mut self, now: SimTime) {
        self.last_activity = self.last_activity.max(now);
    }

    /// Note a memory violation (bounded retention).
    pub fn note_violation(&mut self, msg: String) {
        self.note_violation_keyed(SimTime::ZERO, (0, 0), msg);
    }

    /// [`note_violation`](Metrics::note_violation), stamped with the
    /// dispatch instant and ordering key so partitioned runs can merge
    /// notes back into sequential order.
    pub fn note_violation_keyed(&mut self, at: SimTime, key: (u64, u64), msg: String) {
        self.violations_total += 1;
        if self.mem_violations.len() < MAX_VIOLATION_NOTES {
            self.mem_violations.push(msg);
            self.viol_keys.push((at, key));
        }
    }

    /// Merge per-partition metrics into what an equivalent sequential run
    /// would have recorded. Counters sum; sink captures (keyed by
    /// `(stage, instance)`, each owned by exactly one partition) union;
    /// traces interleave by dispatch key ([`Trace::merge`]); violation
    /// notes re-sort by dispatch key and re-truncate, which is exact
    /// because the globally-first `MAX_VIOLATION_NOTES` notes are
    /// contained in the union of the per-partition prefixes.
    pub fn merge(parts: Vec<Metrics<R>>) -> Metrics<R> {
        let mut it = parts.into_iter();
        let mut m = it.next().expect("merge needs at least one partition");
        let mut traces = vec![std::mem::replace(&mut m.trace, Trace::disabled())];
        let mut viols: Vec<(SimTime, (u64, u64), String)> = m
            .viol_keys
            .drain(..)
            .zip(m.mem_violations.drain(..))
            .map(|((at, key), msg)| (at, key, msg))
            .collect();
        for mut p in it {
            assert_eq!(
                p.stage_work.len(),
                m.stage_work.len(),
                "stage count mismatch"
            );
            for (a, b) in m.stage_work.iter_mut().zip(&p.stage_work) {
                *a += *b;
            }
            for (a, b) in m.stage_records_in.iter_mut().zip(&p.stage_records_in) {
                *a += *b;
            }
            for (a, b) in m.stage_usage.iter_mut().zip(&p.stage_usage) {
                a.absorb(b);
            }
            let before = m.sink_outputs.len() + p.sink_outputs.len();
            m.sink_outputs.append(&mut p.sink_outputs);
            debug_assert_eq!(m.sink_outputs.len(), before, "sink instance owned twice");
            m.records_processed += p.records_processed;
            m.reweights += p.reweights;
            m.fault.absorb(&p.fault);
            m.repair.absorb(&p.repair);
            // Trajectory and final histogram live on the coordinator's
            // partition only; take whichever partition has them.
            if m.repair_samples.is_empty() {
                m.repair_samples = std::mem::take(&mut p.repair_samples);
            }
            if m.replica_hist.is_empty() {
                m.replica_hist = std::mem::take(&mut p.replica_hist);
            }
            if m.repair_src_bytes.len() < p.repair_src_bytes.len() {
                m.repair_src_bytes.resize(p.repair_src_bytes.len(), 0);
            }
            for (a, b) in m.repair_src_bytes.iter_mut().zip(&p.repair_src_bytes) {
                *a += *b;
            }
            m.violations_total += p.violations_total;
            m.last_activity = m.last_activity.max(p.last_activity);
            if m.fatal.is_none() {
                m.fatal = p.fatal;
            }
            viols.extend(
                p.viol_keys
                    .drain(..)
                    .zip(p.mem_violations.drain(..))
                    .map(|((at, key), msg)| (at, key, msg)),
            );
            traces.push(p.trace);
        }
        viols.sort_by_key(|v| (v.0, v.1));
        viols.truncate(MAX_VIOLATION_NOTES);
        for (at, key, msg) in viols {
            m.viol_keys.push((at, key));
            m.mem_violations.push(msg);
        }
        m.trace = Trace::merge(traces);
        m
    }

    /// Total violations seen (including ones not retained).
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }

    /// Total declared work across stages.
    pub fn total_work(&self) -> Work {
        self.stage_work.iter().fold(Work::ZERO, |acc, &w| acc + w)
    }

    /// The captured sink packets in `(stage, instance)` then emission
    /// order, borrowed — no records are copied.
    pub fn sink_packets(&self) -> impl Iterator<Item = &Packet<R>> {
        self.sink_outputs.values().flatten().map(|(_, p)| p)
    }

    /// All records captured at sinks, flattened in `(stage, instance)`
    /// then emission order. Copies every record; prefer
    /// [`sink_packets`](Metrics::sink_packets) for read-only access.
    pub fn sink_records(&self) -> Vec<R> {
        self.sink_packets()
            .flat_map(|p| p.records().iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::Rec8;

    #[test]
    fn work_accumulates_per_stage() {
        let mut m: Metrics<Rec8> = Metrics::new(2);
        m.stage_work[0] += Work::compares(5);
        m.stage_work[1] += Work::moves(3);
        let t = m.total_work();
        assert_eq!(t.compares, 5);
        assert_eq!(t.record_moves, 3);
    }

    #[test]
    fn violation_list_is_bounded() {
        let mut m: Metrics<Rec8> = Metrics::new(1);
        for i in 0..100 {
            m.note_violation(format!("v{i}"));
        }
        assert_eq!(m.mem_violations.len(), MAX_VIOLATION_NOTES);
        assert_eq!(m.violations_total(), 100);
    }

    #[test]
    fn gauge_integrates_depth_over_time() {
        let mut g = StageGauge::new(2);
        // Instance 0: 10 records queued over [100, 300) of a 400ns run.
        g.add(0, 10, SimTime(100));
        g.sub(0, 10, SimTime(300));
        let s = g.stats(SimTime(400));
        assert!((s[0].mean_depth - 10.0 * 200.0 / 400.0).abs() < 1e-9);
        assert_eq!(s[0].peak_depth, 10);
        assert_eq!(s[0].final_depth, 0);
        // Instance 1 never saw traffic.
        assert_eq!(s[1].peak_depth, 0);
        assert_eq!(s[1].mean_depth, 0.0);
    }

    #[test]
    fn gauge_counts_unconsumed_tail_and_peak() {
        let mut g = StageGauge::new(1);
        g.add(0, 4, SimTime(0));
        g.add(0, 4, SimTime(50));
        g.sub(0, 6, SimTime(100));
        let s = g.stats(SimTime(200));
        // 4 over [0,50), 8 over [50,100), 2 over [100,200].
        let area = 4.0 * 50.0 + 8.0 * 50.0 + 2.0 * 100.0;
        assert!((s[0].mean_depth - area / 200.0).abs() < 1e-9);
        assert_eq!(s[0].peak_depth, 8);
        assert_eq!(s[0].final_depth, 2);
        assert_eq!(g.depths(), &[2]);
    }

    #[test]
    fn gauge_clear_drops_depth_but_keeps_history() {
        let mut g = StageGauge::new(1);
        g.add(0, 100, SimTime(0));
        g.clear(0, SimTime(10));
        let s = g.stats(SimTime(100));
        assert_eq!(s[0].final_depth, 0);
        assert_eq!(s[0].peak_depth, 100);
        assert!((s[0].mean_depth - 100.0 * 10.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn sink_records_flatten_in_order() {
        let mut m: Metrics<Rec8> = Metrics::new(1);
        let p1 = Packet::new(vec![Rec8 { key: 1, tag: 0 }]);
        let p2 = Packet::new(vec![Rec8 { key: 2, tag: 1 }, Rec8 { key: 3, tag: 2 }]);
        m.sink_outputs.insert((0, 0), vec![(0, p1)]);
        m.sink_outputs.insert((0, 1), vec![(0, p2)]);
        let recs = m.sink_records();
        assert_eq!(recs.iter().map(|r| r.key).collect::<Vec<_>>(), [1, 2, 3]);
    }
}
