//! Emulated nodes: a CPU, a NIC, a storage substrate, and a memory
//! budget.
//!
//! Hosts and ASUs share this shape; they differ in CPU speed (`1` vs
//! `1/c`), memory budget, and role. CPU and NIC are FCFS resources from
//! `lmas-sim`, so contention between functor instances co-located on one
//! node emerges from the resource queues rather than from bespoke logic.
//!
//! Storage is a [`StripedDisk`] (one spindle by default; `d` per ASU
//! when the [`StorageSpec`] stripes) optionally fronted by a
//! [`BufferPool`] and a [`DiskScheduler`]. With the plain default spec
//! every call delegates straight to the single underlying disk timeline,
//! byte-identical to the pre-substrate node. With the pool enabled,
//! reads and sink writes become block-addressed: streams are laid out on
//! sequential block extents (reads from a low cursor, writes from a high
//! one, so the regions never collide) and every access goes through the
//! pool's hit/miss, eviction, and write-behind machinery.

use crate::config::ClusterConfig;
use crate::fault::NodeHealth;
use lmas_core::{CostModel, NodeId, Work};
use lmas_sim::{Grant, Resource, SimDuration, SimTime};
use lmas_storage::{
    BteStats, BufferPool, DiskScheduler, IoReq, PoolParams, PoolStats, StripedDisk,
};

/// First block of the sink-write extent; far above any read extent so
/// the two block ranges never alias.
const WRITE_BASE_BLOCK: u64 = 1 << 40;

/// NIC serialization time for `bytes` at `rate` bytes/sec.
///
/// The one formula every NIC charge goes through. The parallel runtime
/// derives its lookahead from the same expression (frame overhead over
/// the link rate), so the bound it enforces bit-matches what the nodes
/// actually charge.
pub fn nic_service(bytes: u64, rate: f64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 / rate)
}

/// The storage stack of one node: disk array, optional pool, optional
/// scheduler, plus the block cursors that lay streams onto extents.
#[derive(Debug)]
struct NodeStore {
    striped: StripedDisk,
    pool: Option<BufferPool>,
    sched: Option<DiskScheduler>,
    block_bytes: u64,
    /// Next unassigned block of the source-read extent.
    read_cursor: u64,
    /// Next unassigned block of the sink-write extent.
    write_cursor: u64,
}

impl NodeStore {
    /// Lay `bytes` onto the next blocks of an extent; returns the
    /// `(block, bytes)` run (the tail block may be partial).
    fn alloc_run(cursor: &mut u64, bytes: u64, bb: u64) -> Vec<(u64, u64)> {
        let nblocks = bytes.div_ceil(bb);
        let first = *cursor;
        *cursor += nblocks;
        (0..nblocks)
            .map(|i| {
                let b = if i + 1 == nblocks { bytes - i * bb } else { bb };
                (first + i, b)
            })
            .collect()
    }

    /// Expand a (possibly merged) scheduler request back into a
    /// per-block run. A merged request may cover interior partial-tail
    /// blocks, so the exact per-block byte layout is gone; front-load
    /// the payload over the block range instead (totals stay exact,
    /// per-spindle attribution within the run is approximate).
    fn expand(req: &IoReq, bb: u64) -> Vec<(u64, u64)> {
        let mut rem = req.bytes;
        let mut run = Vec::with_capacity(req.blocks as usize);
        for i in 0..req.blocks {
            let b = rem.min(bb);
            rem -= b;
            if b > 0 {
                run.push((req.first_block + i, b));
            }
        }
        run
    }

    /// Drain the scheduler window through the pool (write-behind) or
    /// straight to the media.
    fn drain_sched(&mut self, now: SimTime) {
        let Some(sched) = self.sched.as_mut() else { return };
        if sched.pending() == 0 {
            return;
        }
        let pool = &mut self.pool;
        let striped = &mut self.striped;
        let bb = self.block_bytes;
        sched.drain_with(|req| {
            let run = NodeStore::expand(req, bb);
            match pool {
                Some(p) => {
                    let mut t = now;
                    for &(b, bytes) in &run {
                        t = t.max(p.write(now, b, bytes, striped));
                    }
                    t
                }
                None => striped.write_blocks(now, &run),
            }
        });
    }
}

/// The simulated devices of one node.
#[derive(Debug)]
pub struct NodeRes {
    /// Which node this is.
    pub id: NodeId,
    /// Relative CPU speed (host = 1.0, ASU = 1/c).
    pub speed: f64,
    /// Memory budget for functor state and buffers.
    pub mem_bytes: usize,
    cpu: Resource,
    nic: Resource,
    store: NodeStore,
    cost: CostModel,
    records_processed: u64,
    peak_state_bytes: usize,
    /// Healthy-state speed, restored on recovery.
    base_speed: f64,
    /// Healthy-state disk rate, restored on recovery.
    base_disk_rate: f64,
    health: NodeHealth,
    /// Fixed per-frame NIC bytes added to every transfer (zero by
    /// default; gives zero-latency links a positive per-hop charge).
    nic_frame_overhead_bytes: u64,
    /// Payload bytes serialized onto the wire by this node (frame
    /// overhead excluded): the measured shuffle-byte counter the coded
    /// distribute mode is judged against.
    nic_bytes_tx: u64,
}

impl NodeRes {
    /// Build the node `id` described by `cfg`.
    pub fn new(id: NodeId, cfg: &ClusterConfig) -> NodeRes {
        // Competing tenants steal a fraction of each ASU's CPU and disk
        // (hosts are dedicated, Section 2.2): model as derated devices.
        // Multi-disk striping is an ASU property (the brick aggregates
        // spindles); hosts keep one disk.
        let spec = cfg.storage;
        let (speed, mem, disk, disks) = match id {
            NodeId::Host(_) => (cfg.host_speed(), cfg.host_mem_bytes, cfg.disk, 1),
            NodeId::Asu(_) => {
                let mut disk = cfg.disk;
                disk.rate_bytes_per_sec *= 1.0 - cfg.background_asu_disk;
                (
                    cfg.asu_speed() * (1.0 - cfg.background_asu_cpu),
                    cfg.asu_mem_bytes,
                    disk,
                    spec.disks,
                )
            }
        };
        let store = NodeStore {
            striped: StripedDisk::new(
                disk,
                disks,
                spec.blocks_per_stripe,
                spec.block_bytes,
                cfg.util_bin,
            ),
            pool: (spec.pool_frames > 0).then(|| {
                BufferPool::new(PoolParams {
                    frames: spec.pool_frames,
                    shards: spec.pool_shards,
                })
            }),
            sched: (spec.sched_window > 1).then(|| DiskScheduler::new(spec.sched_window)),
            block_bytes: spec.block_bytes,
            read_cursor: 0,
            write_cursor: WRITE_BASE_BLOCK,
        };
        NodeRes {
            id,
            speed,
            mem_bytes: mem,
            cpu: Resource::new(format!("{id}.cpu"), cfg.util_bin),
            nic: Resource::new(format!("{id}.nic"), cfg.util_bin),
            store,
            cost: cfg.cost,
            records_processed: 0,
            peak_state_bytes: 0,
            base_speed: speed,
            base_disk_rate: disk.rate_bytes_per_sec,
            health: NodeHealth::Up,
            nic_frame_overhead_bytes: cfg.nic_frame_overhead_bytes,
            nic_bytes_tx: 0,
        }
    }

    /// Change this node's health (fault injection). `Up` restores the
    /// configured speeds, `Degraded` scales CPU and disk by the given
    /// factors, `Down` leaves the devices untouched (nothing runs on a
    /// down node anyway — the runtime stops dispatching to it).
    pub fn set_health(&mut self, health: NodeHealth) {
        self.health = health;
        match health {
            NodeHealth::Up | NodeHealth::Down => {
                self.speed = self.base_speed;
                self.store.striped.set_rate(self.base_disk_rate);
            }
            NodeHealth::Degraded { cpu_factor, disk_factor } => {
                self.speed = self.base_speed * cpu_factor;
                self.store.striped.set_rate(self.base_disk_rate * disk_factor);
            }
        }
    }

    /// Current health.
    pub fn health(&self) -> NodeHealth {
        self.health
    }

    /// Is the node crashed?
    pub fn is_down(&self) -> bool {
        self.health == NodeHealth::Down
    }

    /// Book CPU time for `work` at `now`; returns the service window.
    pub fn charge_cpu(&mut self, now: SimTime, work: Work) -> Grant {
        let service = self.cost.charge(work, self.speed);
        self.cpu.acquire(now, service)
    }

    /// Book NIC serialization for `bytes` (plus the per-frame overhead)
    /// at `now`.
    pub fn charge_nic(&mut self, now: SimTime, bytes: u64, link_rate: f64) -> Grant {
        let service = nic_service(bytes + self.nic_frame_overhead_bytes, link_rate);
        self.nic_bytes_tx += bytes;
        self.nic.acquire(now, service)
    }

    /// Book `count` back-to-back NIC serializations of `bytes` each
    /// (plus the per-frame overhead) at `now` in one batched ledger
    /// update; returns the combined window.
    pub fn charge_nic_batch(
        &mut self,
        now: SimTime,
        bytes: u64,
        link_rate: f64,
        count: u64,
    ) -> Grant {
        let service = nic_service(bytes + self.nic_frame_overhead_bytes, link_rate);
        self.nic_bytes_tx += bytes * count;
        self.nic.acquire_batch(now, count, service)
    }

    /// Sequential disk read of `bytes`; returns data-ready time.
    ///
    /// Without a pool this is a plain striped-stream read (one spindle =
    /// the legacy model, verbatim). With a pool, the stream is laid onto
    /// the node's read extent block by block and each block goes through
    /// the pool (misses charge the media; the per-request overhead is
    /// then honestly paid per block).
    pub fn disk_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        if self.store.pool.is_none() {
            return self.store.striped.read(now, bytes);
        }
        let run = NodeStore::alloc_run(&mut self.store.read_cursor, bytes, self.store.block_bytes);
        let pool = self.store.pool.as_mut().expect("checked above");
        let mut ready = now;
        for &(b, bb) in &run {
            let (r, _hit) = pool.read(now, b, bb, &mut self.store.striped);
            ready = ready.max(r);
        }
        ready
    }

    /// Sequential disk write of `bytes`; returns caller-proceed time.
    pub fn disk_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.store.striped.write(now, bytes)
    }

    /// Sink write of `bytes` from the output stream `tag` (one tag per
    /// functor instance). The plain spec charges the media directly;
    /// otherwise the stream is laid onto the node's write extent and
    /// staged through the scheduler window (same-tag sequential runs
    /// coalesce on drain) and/or the pool's write-behind.
    pub fn disk_write_sink(&mut self, now: SimTime, tag: u64, bytes: u64) -> SimTime {
        let store = &mut self.store;
        if store.pool.is_none() && store.sched.is_none() {
            return store.striped.write(now, bytes);
        }
        let run = NodeStore::alloc_run(&mut store.write_cursor, bytes, store.block_bytes);
        let Some(&(first, _)) = run.first() else {
            return now; // zero-byte packet: nothing to stage
        };
        if let Some(sched) = store.sched.as_mut() {
            sched.submit(tag, first, run.len() as u64, bytes, true);
            if sched.is_full() {
                store.drain_sched(now);
            }
            now
        } else {
            let pool = store.pool.as_mut().expect("pool or sched is present");
            let mut t = now;
            for &(b, bb) in &run {
                t = t.max(pool.write(now, b, bb, &mut store.striped));
            }
            t
        }
    }

    /// Flush everything staged in the storage stack (scheduler residue,
    /// then dirty pool frames) at `now` and return when the media
    /// quiesces. A no-op returning the plain quiesce time for the
    /// default spec.
    pub fn storage_drain(&mut self, now: SimTime) -> SimTime {
        self.store.drain_sched(now);
        if let Some(pool) = self.store.pool.as_mut() {
            pool.flush(now, &mut self.store.striped);
        }
        self.store.striped.quiesce_time()
    }

    /// Record that `n` records were processed here (progress metric).
    pub fn note_records(&mut self, n: u64) {
        self.records_processed += n;
    }

    /// Track the largest functor-state footprint observed on this node.
    pub fn note_state_bytes(&mut self, bytes: usize) {
        self.peak_state_bytes = self.peak_state_bytes.max(bytes);
    }

    /// Records processed on this node.
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    /// Peak observed functor state.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_state_bytes
    }

    /// CPU utilization series over `[0, horizon]`.
    pub fn cpu_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.cpu.utilization_series(horizon)
    }

    /// Mean CPU utilization over `[0, horizon]`.
    pub fn mean_cpu_utilization(&self, horizon: SimTime) -> f64 {
        self.cpu.mean_utilization(horizon)
    }

    /// Total CPU busy time.
    pub fn cpu_busy(&self) -> SimDuration {
        self.cpu.total_busy()
    }

    /// When the CPU queue drains.
    pub fn cpu_free_at(&self) -> SimTime {
        self.cpu.next_free()
    }

    /// When the disk media quiesces (all spindles).
    pub fn disk_quiesce(&self) -> SimTime {
        self.store.striped.quiesce_time()
    }

    /// Disk counters: (reads, writes, bytes_read, bytes_written),
    /// aggregated across spindles.
    pub fn disk_counters(&self) -> (u64, u64, u64, u64) {
        self.store.striped.counters()
    }

    /// Aggregate transfer counters across spindles.
    pub fn disk_stats(&self) -> BteStats {
        self.store.striped.stats()
    }

    /// Per-spindle transfer counters, in disk order.
    pub fn per_disk_stats(&self) -> Vec<BteStats> {
        self.store.striped.per_disk_stats()
    }

    /// Per-spindle media busy time, in disk order.
    pub fn per_disk_busy(&self) -> Vec<SimDuration> {
        self.store.striped.per_disk_busy()
    }

    /// Number of spindles in this node's array.
    pub fn disk_count(&self) -> usize {
        self.store.striped.disk_count()
    }

    /// Buffer-pool counters (all zero when the pool is disabled).
    pub fn pool_stats(&self) -> PoolStats {
        self.store
            .pool
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// NIC busy time.
    pub fn nic_busy(&self) -> SimDuration {
        self.nic.total_busy()
    }

    /// Payload bytes this node has serialized onto the wire.
    pub fn nic_bytes_tx(&self) -> u64 {
        self.nic_bytes_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::era_2002(1, 2, 8.0)
    }

    #[test]
    fn host_and_asu_speeds_differ_by_c() {
        let h = NodeRes::new(NodeId::Host(0), &cfg());
        let a = NodeRes::new(NodeId::Asu(0), &cfg());
        assert_eq!(h.speed, 1.0);
        assert!((a.speed - 0.125).abs() < 1e-12);
        assert!(h.mem_bytes > a.mem_bytes);
    }

    #[test]
    fn cpu_charge_is_c_times_slower_on_asu() {
        let c = cfg();
        let mut h = NodeRes::new(NodeId::Host(0), &c);
        let mut a = NodeRes::new(NodeId::Asu(0), &c);
        let w = Work::compares(1000);
        let gh = h.charge_cpu(SimTime::ZERO, w);
        let ga = a.charge_cpu(SimTime::ZERO, w);
        let th = gh.end.as_nanos() as f64;
        let ta = ga.end.as_nanos() as f64;
        assert!((ta / th - 8.0).abs() < 1e-9, "ratio {}", ta / th);
    }

    #[test]
    fn cpu_serializes_colocated_work() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let g1 = h.charge_cpu(SimTime::ZERO, Work::compares(100));
        let g2 = h.charge_cpu(SimTime::ZERO, Work::compares(100));
        assert_eq!(g2.start, g1.end);
        assert!(h.cpu_busy() > SimDuration::ZERO);
    }

    #[test]
    fn nic_charge_scales_with_bytes() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let g = h.charge_nic(SimTime::ZERO, 1_000_000, 1.0e9);
        assert_eq!(g.end.since(g.start), SimDuration::from_millis(1));
    }

    #[test]
    fn nic_frame_overhead_adds_to_every_charge() {
        let c = cfg().with_nic_frame_overhead(1_000);
        let mut h = NodeRes::new(NodeId::Host(0), &c);
        let g = h.charge_nic(SimTime::ZERO, 1_000_000, 1.0e9);
        assert_eq!(g.end.since(g.start), nic_service(1_001_000, 1.0e9));
        // Even a zero-byte frame (e.g. an EOS marker) pays the overhead.
        let g = h.charge_nic(g.end, 0, 1.0e9);
        assert_eq!(g.end.since(g.start), SimDuration::from_micros(1));
    }

    #[test]
    fn background_load_slows_asu_devices() {
        let quiet = ClusterConfig::era_2002(1, 1, 8.0);
        let busy = quiet.with_background(0.5, 0.5);
        let mut aq = NodeRes::new(NodeId::Asu(0), &quiet);
        let mut ab = NodeRes::new(NodeId::Asu(0), &busy);
        let w = Work::compares(1000);
        let tq = aq.charge_cpu(SimTime::ZERO, w).end.as_nanos() as f64;
        let tb = ab.charge_cpu(SimTime::ZERO, w).end.as_nanos() as f64;
        assert!((tb / tq - 2.0).abs() < 1e-9, "half the CPU → twice the time");
        let rq = aq.disk_read(SimTime::ZERO, 1_000_000).as_nanos() as f64;
        let rb = ab.disk_read(SimTime::ZERO, 1_000_000).as_nanos() as f64;
        assert!((rb / rq - 2.0).abs() < 1e-6, "half the disk → twice the time");
        // Hosts unaffected.
        let mut hq = NodeRes::new(NodeId::Host(0), &quiet);
        let mut hb = NodeRes::new(NodeId::Host(0), &busy);
        assert_eq!(
            hq.charge_cpu(SimTime::ZERO, w).end,
            hb.charge_cpu(SimTime::ZERO, w).end
        );
    }

    #[test]
    fn degrade_scales_devices_and_recovery_restores_them() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let w = Work::compares(1000);
        let t_up = h.charge_cpu(SimTime::ZERO, w).end.since(SimTime::ZERO);
        h.set_health(NodeHealth::Degraded { cpu_factor: 0.5, disk_factor: 0.25 });
        assert!(!h.is_down());
        let g = h.charge_cpu(h.cpu_free_at(), w);
        let t_deg = g.end.since(g.start);
        assert!(
            (t_deg.as_secs_f64() / t_up.as_secs_f64() - 2.0).abs() < 1e-9,
            "half the CPU → twice the time"
        );
        h.set_health(NodeHealth::Up);
        let g = h.charge_cpu(h.cpu_free_at(), w);
        assert_eq!(g.end.since(g.start), t_up, "recovery restores full speed");
        h.set_health(NodeHealth::Down);
        assert!(h.is_down());
        assert_eq!(h.health(), NodeHealth::Down);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = NodeRes::new(NodeId::Asu(0), &cfg());
        a.note_records(10);
        a.note_records(5);
        a.note_state_bytes(100);
        a.note_state_bytes(50);
        assert_eq!(a.records_processed(), 15);
        assert_eq!(a.peak_state_bytes(), 100);
        a.disk_write(SimTime::ZERO, 4096);
        let (_, w, _, bw) = a.disk_counters();
        assert_eq!((w, bw), (1, 4096));
    }
}
