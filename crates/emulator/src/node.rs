//! Emulated nodes: a CPU, a NIC, a disk, and a memory budget.
//!
//! Hosts and ASUs share this shape; they differ in CPU speed (`1` vs
//! `1/c`), memory budget, and role. Each device is an FCFS resource from
//! `lmas-sim`, so contention between functor instances co-located on one
//! node emerges from the resource queues rather than from bespoke logic.

use crate::config::ClusterConfig;
use crate::fault::NodeHealth;
use lmas_core::{CostModel, NodeId, Work};
use lmas_sim::{Grant, Resource, SimDuration, SimTime};
use lmas_storage::DiskSim;

/// The simulated devices of one node.
#[derive(Debug)]
pub struct NodeRes {
    /// Which node this is.
    pub id: NodeId,
    /// Relative CPU speed (host = 1.0, ASU = 1/c).
    pub speed: f64,
    /// Memory budget for functor state and buffers.
    pub mem_bytes: usize,
    cpu: Resource,
    nic: Resource,
    disk: DiskSim,
    cost: CostModel,
    records_processed: u64,
    peak_state_bytes: usize,
    /// Healthy-state speed, restored on recovery.
    base_speed: f64,
    /// Healthy-state disk rate, restored on recovery.
    base_disk_rate: f64,
    health: NodeHealth,
}

impl NodeRes {
    /// Build the node `id` described by `cfg`.
    pub fn new(id: NodeId, cfg: &ClusterConfig) -> NodeRes {
        // Competing tenants steal a fraction of each ASU's CPU and disk
        // (hosts are dedicated, Section 2.2): model as derated devices.
        let (speed, mem, disk) = match id {
            NodeId::Host(_) => (cfg.host_speed(), cfg.host_mem_bytes, cfg.disk),
            NodeId::Asu(_) => {
                let mut disk = cfg.disk;
                disk.rate_bytes_per_sec *= 1.0 - cfg.background_asu_disk;
                (
                    cfg.asu_speed() * (1.0 - cfg.background_asu_cpu),
                    cfg.asu_mem_bytes,
                    disk,
                )
            }
        };
        NodeRes {
            id,
            speed,
            mem_bytes: mem,
            cpu: Resource::new(format!("{id}.cpu"), cfg.util_bin),
            nic: Resource::new(format!("{id}.nic"), cfg.util_bin),
            disk: DiskSim::new(disk, cfg.util_bin),
            cost: cfg.cost,
            records_processed: 0,
            peak_state_bytes: 0,
            base_speed: speed,
            base_disk_rate: disk.rate_bytes_per_sec,
            health: NodeHealth::Up,
        }
    }

    /// Change this node's health (fault injection). `Up` restores the
    /// configured speeds, `Degraded` scales CPU and disk by the given
    /// factors, `Down` leaves the devices untouched (nothing runs on a
    /// down node anyway — the runtime stops dispatching to it).
    pub fn set_health(&mut self, health: NodeHealth) {
        self.health = health;
        match health {
            NodeHealth::Up | NodeHealth::Down => {
                self.speed = self.base_speed;
                self.disk.set_rate(self.base_disk_rate);
            }
            NodeHealth::Degraded { cpu_factor, disk_factor } => {
                self.speed = self.base_speed * cpu_factor;
                self.disk.set_rate(self.base_disk_rate * disk_factor);
            }
        }
    }

    /// Current health.
    pub fn health(&self) -> NodeHealth {
        self.health
    }

    /// Is the node crashed?
    pub fn is_down(&self) -> bool {
        self.health == NodeHealth::Down
    }

    /// Book CPU time for `work` at `now`; returns the service window.
    pub fn charge_cpu(&mut self, now: SimTime, work: Work) -> Grant {
        let service = self.cost.charge(work, self.speed);
        self.cpu.acquire(now, service)
    }

    /// Book NIC serialization for `bytes` at `now`.
    pub fn charge_nic(&mut self, now: SimTime, bytes: u64, link_rate: f64) -> Grant {
        let service = SimDuration::from_secs_f64(bytes as f64 / link_rate);
        self.nic.acquire(now, service)
    }

    /// Book `count` back-to-back NIC serializations of `bytes` each at
    /// `now` in one batched ledger update; returns the combined window.
    pub fn charge_nic_batch(
        &mut self,
        now: SimTime,
        bytes: u64,
        link_rate: f64,
        count: u64,
    ) -> Grant {
        let service = SimDuration::from_secs_f64(bytes as f64 / link_rate);
        self.nic.acquire_batch(now, count, service)
    }

    /// Sequential disk read of `bytes`; returns data-ready time.
    pub fn disk_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.disk.read(now, bytes)
    }

    /// Sequential disk write of `bytes`; returns caller-proceed time.
    pub fn disk_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.disk.write(now, bytes)
    }

    /// Record that `n` records were processed here (progress metric).
    pub fn note_records(&mut self, n: u64) {
        self.records_processed += n;
    }

    /// Track the largest functor-state footprint observed on this node.
    pub fn note_state_bytes(&mut self, bytes: usize) {
        self.peak_state_bytes = self.peak_state_bytes.max(bytes);
    }

    /// Records processed on this node.
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    /// Peak observed functor state.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_state_bytes
    }

    /// CPU utilization series over `[0, horizon]`.
    pub fn cpu_utilization(&self, horizon: SimTime) -> Vec<f64> {
        self.cpu.utilization_series(horizon)
    }

    /// Mean CPU utilization over `[0, horizon]`.
    pub fn mean_cpu_utilization(&self, horizon: SimTime) -> f64 {
        self.cpu.mean_utilization(horizon)
    }

    /// Total CPU busy time.
    pub fn cpu_busy(&self) -> SimDuration {
        self.cpu.total_busy()
    }

    /// When the CPU queue drains.
    pub fn cpu_free_at(&self) -> SimTime {
        self.cpu.next_free()
    }

    /// When the disk media quiesces.
    pub fn disk_quiesce(&self) -> SimTime {
        self.disk.quiesce_time()
    }

    /// Disk counters: (reads, writes, bytes_read, bytes_written).
    pub fn disk_counters(&self) -> (u64, u64, u64, u64) {
        self.disk.counters()
    }

    /// NIC busy time.
    pub fn nic_busy(&self) -> SimDuration {
        self.nic.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::era_2002(1, 2, 8.0)
    }

    #[test]
    fn host_and_asu_speeds_differ_by_c() {
        let h = NodeRes::new(NodeId::Host(0), &cfg());
        let a = NodeRes::new(NodeId::Asu(0), &cfg());
        assert_eq!(h.speed, 1.0);
        assert!((a.speed - 0.125).abs() < 1e-12);
        assert!(h.mem_bytes > a.mem_bytes);
    }

    #[test]
    fn cpu_charge_is_c_times_slower_on_asu() {
        let c = cfg();
        let mut h = NodeRes::new(NodeId::Host(0), &c);
        let mut a = NodeRes::new(NodeId::Asu(0), &c);
        let w = Work::compares(1000);
        let gh = h.charge_cpu(SimTime::ZERO, w);
        let ga = a.charge_cpu(SimTime::ZERO, w);
        let th = gh.end.as_nanos() as f64;
        let ta = ga.end.as_nanos() as f64;
        assert!((ta / th - 8.0).abs() < 1e-9, "ratio {}", ta / th);
    }

    #[test]
    fn cpu_serializes_colocated_work() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let g1 = h.charge_cpu(SimTime::ZERO, Work::compares(100));
        let g2 = h.charge_cpu(SimTime::ZERO, Work::compares(100));
        assert_eq!(g2.start, g1.end);
        assert!(h.cpu_busy() > SimDuration::ZERO);
    }

    #[test]
    fn nic_charge_scales_with_bytes() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let g = h.charge_nic(SimTime::ZERO, 1_000_000, 1.0e9);
        assert_eq!(g.end.since(g.start), SimDuration::from_millis(1));
    }

    #[test]
    fn background_load_slows_asu_devices() {
        let quiet = ClusterConfig::era_2002(1, 1, 8.0);
        let busy = quiet.with_background(0.5, 0.5);
        let mut aq = NodeRes::new(NodeId::Asu(0), &quiet);
        let mut ab = NodeRes::new(NodeId::Asu(0), &busy);
        let w = Work::compares(1000);
        let tq = aq.charge_cpu(SimTime::ZERO, w).end.as_nanos() as f64;
        let tb = ab.charge_cpu(SimTime::ZERO, w).end.as_nanos() as f64;
        assert!((tb / tq - 2.0).abs() < 1e-9, "half the CPU → twice the time");
        let rq = aq.disk_read(SimTime::ZERO, 1_000_000).as_nanos() as f64;
        let rb = ab.disk_read(SimTime::ZERO, 1_000_000).as_nanos() as f64;
        assert!((rb / rq - 2.0).abs() < 1e-6, "half the disk → twice the time");
        // Hosts unaffected.
        let mut hq = NodeRes::new(NodeId::Host(0), &quiet);
        let mut hb = NodeRes::new(NodeId::Host(0), &busy);
        assert_eq!(
            hq.charge_cpu(SimTime::ZERO, w).end,
            hb.charge_cpu(SimTime::ZERO, w).end
        );
    }

    #[test]
    fn degrade_scales_devices_and_recovery_restores_them() {
        let mut h = NodeRes::new(NodeId::Host(0), &cfg());
        let w = Work::compares(1000);
        let t_up = h.charge_cpu(SimTime::ZERO, w).end.since(SimTime::ZERO);
        h.set_health(NodeHealth::Degraded { cpu_factor: 0.5, disk_factor: 0.25 });
        assert!(!h.is_down());
        let g = h.charge_cpu(h.cpu_free_at(), w);
        let t_deg = g.end.since(g.start);
        assert!(
            (t_deg.as_secs_f64() / t_up.as_secs_f64() - 2.0).abs() < 1e-9,
            "half the CPU → twice the time"
        );
        h.set_health(NodeHealth::Up);
        let g = h.charge_cpu(h.cpu_free_at(), w);
        assert_eq!(g.end.since(g.start), t_up, "recovery restores full speed");
        h.set_health(NodeHealth::Down);
        assert!(h.is_down());
        assert_eq!(h.health(), NodeHealth::Down);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = NodeRes::new(NodeId::Asu(0), &cfg());
        a.note_records(10);
        a.note_records(5);
        a.note_state_bytes(100);
        a.note_state_bytes(50);
        assert_eq!(a.records_processed(), 15);
        assert_eq!(a.peak_state_bytes(), 100);
        a.disk_write(SimTime::ZERO, 4096);
        let (_, w, _, bw) = a.disk_counters();
        assert_eq!((w, bw), (1, 4096));
    }
}
