//! **T1** — the work identity of Section 4.3:
//! `Total Work = n·log α + n·log β + n·log γ = n·log(αβγ)`.
//!
//! Sweeps factorizations of `n = α·β·γ` and reports the comparisons the
//! emulated sort *actually* charged (distribute + block sort + both merge
//! levels) against the paper's formula. Merge fan-ins land below their
//! power-of-two ceilings at run boundaries, so measured work sits at or
//! slightly under the bound; it must never exceed it.

use lmas_bench::{row, write_results};
use lmas_core::{generate_rec128, KeyDist};
use lmas_emulator::ClusterConfig;
use lmas_sort::{run_dsm_sort, DsmConfig, LoadMode};

fn main() {
    // n = 2^16 exactly, so αβγ = n factorizations are clean.
    let n: u64 = 1 << 16;
    let data = generate_rec128(n, KeyDist::Uniform, 7);
    let cluster = ClusterConfig::era_2002(2, 8, 8.0);

    // (α, β, γ1, γ2) with α·β·γ1·γ2 = 2^16.
    let configs: [(usize, usize, usize, usize); 5] = [
        (1, 4096, 4, 4),
        (4, 4096, 2, 2),
        (16, 1024, 2, 2),
        (64, 256, 2, 2),
        (256, 64, 2, 2),
    ];

    println!("T1: measured compares vs n·log2(αβγ)  (n = {n} = 2^16)");
    let widths = [6usize, 6, 4, 4, 14, 14, 9];
    println!(
        "{}",
        row(
            &["α", "β", "γ1", "γ2", "measured cmp", "bound n·logN", "ratio"]
                .map(String::from),
            &widths
        )
    );
    let mut csv = String::from("alpha,beta,gamma1,gamma2,measured,bound,ratio\n");
    for (alpha, beta, g1, g2) in configs {
        let dsm = DsmConfig::new(alpha, beta, g1, g2);
        let out = run_dsm_sort(&cluster, data.clone(), &dsm, LoadMode::Static)
            .expect("work table run");
        lmas_sort::verify_rec128_output(&out.output, n).expect("sorted");
        let measured: u64 = out
            .pass1
            .stage_work
            .iter()
            .chain(out.pass2.stage_work.iter())
            .map(|(_, w)| w.compares)
            .sum();
        let bound = dsm.work_bound_compares(n);
        let ratio = measured as f64 / bound as f64;
        // The identity is exact for perfect factorizations; sampled
        // splitters skew subset sizes and short tail runs raise merge
        // fan-ins past their power-of-two ceilings, so allow the ceil
        // slack (one extra compare level across the merge terms).
        assert!(
            ratio <= 1.35,
            "measured compares ({measured}) far exceed n·log(αβγ) ({bound})"
        );
        assert!(
            ratio >= 0.6,
            "measured compares ({measured}) far below n·log(αβγ) ({bound})"
        );
        println!(
            "{}",
            row(
                &[
                    alpha.to_string(),
                    beta.to_string(),
                    g1.to_string(),
                    g2.to_string(),
                    measured.to_string(),
                    bound.to_string(),
                    format!("{ratio:.3}"),
                ],
                &widths
            )
        );
        csv.push_str(&format!(
            "{alpha},{beta},{g1},{g2},{measured},{bound},{ratio:.4}\n"
        ));
    }
    write_results("work_table.csv", &csv);
}
