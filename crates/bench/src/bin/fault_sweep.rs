//! **F-FT** — cost of masking a crash: makespan inflation vs crash time,
//! replica spread, and routing policy.
//!
//! Crashes the last ASU at a sweep of points through pass 1 of DSM-Sort
//! and lets the fault layer mask it: deliveries bounce, the heartbeat
//! detector fences the dead node, routing fails over to survivors, and
//! a repair pass re-dispatches whatever died with the node. Every cell
//! verifies its final output byte-identical to the fault-free golden run
//! before reporting — a number only counts if recovery was *exact*.
//!
//! Output: `results/BENCH_faults.json` with per-(policy, crash-fraction)
//! total-makespan inflation ratios and fault-layer counters.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, RoutingPolicy};
use lmas_emulator::{asu_index, ClusterConfig, FaultSpec};
use lmas_sort::{
    canonical_equal, run_dsm_sort, run_dsm_sort_faulty, DsmConfig, LoadMode,
};
use lmas_sim::{FaultPlan, SimTime};
use rayon::prelude::*;

const HOSTS: usize = 2;
const ASUS: usize = 4;
const CRASH_FRACS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

fn policies() -> [(&'static str, LoadMode); 4] {
    [
        ("static", LoadMode::Static),
        ("rr", LoadMode::Managed(RoutingPolicy::RoundRobin)),
        ("sr", LoadMode::Managed(RoutingPolicy::SimpleRandomization)),
        ("load", LoadMode::Managed(RoutingPolicy::LoadAware)),
    ]
}

struct Cell {
    policy: &'static str,
    frac: f64,
    inflation: f64,
    recovered: u64,
    retries: u64,
    nacks: u64,
    fenced: u64,
}

fn main() {
    let n = scaled_n(20_000, 4_000);
    let cluster = ClusterConfig::era_2002(HOSTS, ASUS, 8.0);
    let dsm = DsmConfig::new(8, 512, 8, 4096);
    let data = generate_rec128(n, KeyDist::Uniform, 11);
    let victim = asu_index(&cluster, ASUS - 1);

    println!(
        "F-FT: makespan inflation masking a crash of ASU {} (n={n}, H={HOSTS}, D={ASUS})",
        ASUS - 1
    );
    let widths = [8usize, 9, 9, 9, 9];
    let mut header = vec!["policy".to_string()];
    header.extend(CRASH_FRACS.iter().map(|f| format!("t={f:.1}")));
    println!("{}", row(&header, &widths));

    // Fault-free goldens, one per policy (in parallel), then the full
    // policy × crash-time grid of masked runs.
    let goldens: Vec<_> = policies()
        .par_iter()
        .map(|&(_, mode)| {
            run_dsm_sort(&cluster, data.clone(), &dsm, mode).expect("fault-free golden run")
        })
        .collect();
    let jobs: Vec<(usize, f64)> = (0..policies().len())
        .flat_map(|p| CRASH_FRACS.iter().map(move |&f| (p, f)))
        .collect();
    let cells: Vec<Cell> = jobs
        .par_iter()
        .map(|&(p, frac)| {
            let (name, mode) = policies()[p];
            let golden = &goldens[p];
            let t = SimTime((golden.pass1.makespan.as_secs_f64() * frac * 1e9) as u64);
            let spec = FaultSpec::with_plan(FaultPlan::new().crash(victim, t));
            let faulted = run_dsm_sort_faulty(&cluster, &spec, data.clone(), &dsm, mode)
                .expect("masked run completes");
            canonical_equal(&golden.output, &faulted.output)
                .expect("recovered output must be byte-identical");
            let s = faulted.pass1.fault;
            Cell {
                policy: name,
                frac,
                inflation: faulted.total.as_secs_f64() / golden.total.as_secs_f64(),
                recovered: faulted.recovered_records,
                retries: s.retries,
                nacks: s.nacks,
                fenced: s.fenced_instances,
            }
        })
        .collect();

    let mut json = String::from("{\n");
    for (name, _) in policies() {
        let series: Vec<&Cell> = cells.iter().filter(|c| c.policy == name).collect();
        let mut out = vec![name.to_string()];
        out.extend(series.iter().map(|c| format!("{:.3}", c.inflation)));
        println!("{}", row(&out, &widths));
        for c in &series {
            json.push_str(&format!(
                "  \"{}/t{:.1}\": {{\"inflation\": {:.4}, \"recovered_records\": {}, \
                 \"retries\": {}, \"nacks\": {}, \"fenced\": {}}},\n",
                c.policy, c.frac, c.inflation, c.recovered, c.retries, c.nacks, c.fenced
            ));
        }
    }
    // All cells verified byte-identical; note it in the artifact.
    json.push_str("  \"verified_byte_identical\": true\n}\n");
    write_results("BENCH_faults.json", &json);

    // Sanity: masking a crash is never free.
    assert!(
        cells.iter().all(|c| c.inflation >= 1.0),
        "a masked crash cannot beat the fault-free run"
    );
}
