//! **F5** — distributed R-tree organizations (Section 4.2, Figure 5).
//!
//! "Because the latter option stripes leaves across ASUs, every query
//! executes in parallel on all of the ASUs, which is useful to bound
//! search latency. The former option distributes the searches across the
//! ASUs, which is useful in server applications with many concurrent
//! searches."
//!
//! Measured: single-query latency (mean over a random query set, each
//! run alone) and aggregate throughput under a concurrent query flood.
//! Expected: stripe wins latency; partition wins throughput.

use lmas_bench::{row, scaled_n, write_results};
use lmas_emulator::ClusterConfig;
use lmas_gis::{random_points, DistRTree, Layout, Rect};
use lmas_sim::DetRng;
use rayon::prelude::*;

fn random_queries(q: usize, side: f32, seed: u64) -> Vec<Rect> {
    let mut rng = DetRng::stream(seed, 0xF5);
    (0..q)
        .map(|_| {
            let x = rng.gen_f64() as f32 * (1.0 - side);
            let y = rng.gen_f64() as f32 * (1.0 - side);
            Rect::new(x, y, x + side, y + side)
        })
        .collect()
}

fn main() {
    let npoints = scaled_n(200_000, 20_000) as usize;
    let flood = 256usize;
    let probes = 16usize;
    let side = 0.08f32;

    println!("F5: partition vs stripe distributed R-trees ({npoints} points, {side}-side queries)");
    let widths = [5usize, 11, 14, 16];
    println!(
        "{}",
        row(
            &["D", "layout", "latency (1q)", "throughput (q/s)"].map(String::from),
            &widths
        )
    );
    let mut csv = String::from("d,layout,latency_s,throughput_qps\n");

    // Each (D, layout) cell builds its own index from the same seeded
    // point set and runs its probe/flood emulations independently, so
    // the grid fans out across threads; results return in input order,
    // keeping output byte-identical to the serial sweep.
    let cells: Vec<(usize, Layout)> = [4usize, 16]
        .into_iter()
        .flat_map(|d| [(d, Layout::Partition), (d, Layout::Stripe)])
        .collect();
    let measured: Vec<(f64, f64)> = cells
        .par_iter()
        .map(|&(d, layout)| {
            let cluster = ClusterConfig::era_2002(1, d, 8.0);
            let points = random_points(npoints, 9);
            let index = DistRTree::build(points, d, 64, layout);
            // Latency: each probe query runs alone; average makespan.
            let mut lat = 0.0;
            for (i, q) in random_queries(probes, side, 77).into_iter().enumerate() {
                let run = lmas_gis::run_queries(&cluster, &index, &[q], 1)
                    .unwrap_or_else(|e| panic!("latency probe {i}: {e}"));
                lat += run.report.makespan.as_secs_f64();
            }
            lat /= probes as f64;
            // Throughput: a flood of concurrent queries.
            let queries = random_queries(flood, side, 123);
            let run = lmas_gis::run_queries(&cluster, &index, &queries, 4).expect("flood");
            let thr = flood as f64 / run.report.makespan.as_secs_f64();
            (lat, thr)
        })
        .collect();
    for (&(d, layout), &(lat, thr)) in cells.iter().zip(&measured) {
        let name = format!("{layout:?}").to_lowercase();
        println!(
            "{}",
            row(
                &[
                    d.to_string(),
                    name.clone(),
                    format!("{:.3}ms", lat * 1e3),
                    format!("{thr:.0}"),
                ],
                &widths
            )
        );
        csv.push_str(&format!("{d},{name},{lat:.6},{thr:.2}\n"));
    }
    // Hot-region extension: every query hammers the same spatial slab.
    // Partition serializes on one ASU; the paper's hybrid (replicated
    // subtrees) load-balances replicas; stripe parallelizes by design.
    println!("\nhot-region flood ({flood} queries on one slab, D=16):");
    let d = 16usize;
    let cluster = ClusterConfig::era_2002(1, d, 8.0);
    let points = random_points(npoints, 9);
    let hot: Vec<Rect> = (0..flood)
        .map(|i| {
            let off = (i % 8) as f32 * 0.002;
            Rect::new(0.05 + off, 0.1, 0.05 + off + side, 0.1 + side * 4.0)
        })
        .collect();
    let mut hot_csv = String::from("layout,throughput_qps\n");
    let hot_layouts = [
        Layout::Partition,
        Layout::Replicated { copies: 4 },
        Layout::Stripe,
    ];
    let hot_thr: Vec<f64> = hot_layouts
        .par_iter()
        .map(|&layout| {
            let index = DistRTree::build(points.clone(), d, 64, layout);
            let run = lmas_gis::run_queries(&cluster, &index, &hot, 4).expect("hot flood");
            flood as f64 / run.report.makespan.as_secs_f64()
        })
        .collect();
    for (&layout, &thr) in hot_layouts.iter().zip(&hot_thr) {
        let name = format!("{layout:?}").to_lowercase();
        println!("  {name:<28} {thr:>8.0} q/s");
        hot_csv.push_str(&format!("{name},{thr:.2}\n"));
    }
    write_results("rtree_layouts.csv", &csv);
    write_results("rtree_hot_region.csv", &hot_csv);
}
