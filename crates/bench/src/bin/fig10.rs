//! **Figure 10** — Effect of skew: host CPU utilization over time for two
//! DSM-Sort runs on two hosts and 16 ASUs, with and without load
//! management.
//!
//! Paper setup: the first half of the input is uniform, the second half
//! exponential. The baseline statically assigns half of the α subsets to
//! each host; the load-managed run spreads every subset across both hosts
//! with simple randomization (SR). Expected shape: the static run's host
//! utilizations diverge when the skewed half arrives and the run finishes
//! later; the SR run keeps both hosts nearly identical and terminates
//! earlier.

use lmas_bench::{scaled_n, write_results};
use lmas_emulator::ClusterConfig;
use lmas_sort::skew::{fig10_data_per_asu, uniform_assuming_splitters};
use lmas_sort::{run_pass1, DsmConfig, LoadMode};

fn main() {
    let n = scaled_n(1 << 20, 1 << 16);
    let d = 16usize;
    let h = 2usize;
    let alpha = 16usize;
    let beta = 4096usize;
    let cluster = ClusterConfig::era_2002(h, d, 8.0);
    let dsm = DsmConfig::new(alpha, beta, 8, 4096);
    // Splitters calibrated for uniform keys: the exponential half then
    // floods the low buckets, which is the imbalance the figure shows.
    let splitters = uniform_assuming_splitters(alpha);
    let bin_s = cluster.util_bin.as_secs_f64();

    println!(
        "Figure 10: host CPU utilization under skew (n={n}, H={h}, D={d}, α={alpha}, c=8)"
    );

    let mut csv = String::from("t,static_h0,static_h1,managed_h0,managed_h1\n");
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (label, mode) in [
        ("no load control", LoadMode::Static),
        ("load-managed (SR)", LoadMode::managed_sr()),
    ] {
        let data = fig10_data_per_asu(n, d, 42);
        let run = run_pass1(&cluster, data, splitters.clone(), &dsm, mode).expect("fig10 run");
        let h0 = run.report.host_cpu_series(0).to_vec();
        let h1 = run.report.host_cpu_series(1).to_vec();
        let m0 = run.report.nodes[0].mean_cpu_util;
        let m1 = run.report.nodes[1].mean_cpu_util;
        println!(
            "{label:>18}: makespan {:>10}  host0 mean {:>5.1}%  host1 mean {:>5.1}%",
            run.report.makespan.to_string(),
            m0 * 100.0,
            m1 * 100.0
        );
        series.push(h0);
        series.push(h1);
    }

    let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for b in 0..bins {
        let cells: Vec<String> = series
            .iter()
            .map(|s| format!("{:.4}", s.get(b).copied().unwrap_or(0.0)))
            .collect();
        csv.push_str(&format!("{:.3},{}\n", b as f64 * bin_s, cells.join(",")));
    }
    write_results("fig10_utilization.csv", &csv);

    // ASCII rendering of the four series.
    println!("\nutilization traces (one char per {bin_s:.1}s bin, 0-9 = 0-100%):");
    let names = ["static h0 ", "static h1 ", "managed h0", "managed h1"];
    for (name, s) in names.iter().zip(&series) {
        let line: String = s
            .iter()
            .map(|v| {
                let level = (v * 9.0).round().clamp(0.0, 9.0) as u32;
                char::from_digit(level, 10).expect("digit")
            })
            .collect();
        println!("  {name} |{line}|");
    }
}
