//! **F-PLACE** — planner vs manual placement: pass-1 makespan of
//! DSM-Sort under naive all-hosts and all-ASUs layouts, the planned
//! (`LoadMode::Auto`) layout, and the planned layout with the runtime
//! balancer armed, across a small (H, D, c) cluster grid.
//!
//! Checks baked into every cell:
//! - the planned layout is never slower than either naive layout;
//! - the planner's analytic prediction is recorded next to the
//!   measured makespan (accuracy is asserted in the sort test suite);
//! - a balancer whose deadbands are too wide to ever fire leaves the
//!   planned run *byte-identical* (same makespan, zero reweights) —
//!   the weight channel is genuinely dormant until used.
//!
//! Output: `results/BENCH_placement.json`.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, NodeId, Rec128};
use lmas_emulator::{BalanceSpec, ClusterConfig};
use lmas_sim::SimDuration;
use lmas_sort::dsm::static_host_of;
use lmas_sort::{
    choose_splitters, run_pass1, run_pass1_placed, split_across_asus, DsmConfig, LoadMode,
};
use rayon::prelude::*;

/// (hosts, asus, cpu-ratio c) grid — one small, the 2002 testbed shape,
/// a disk-heavy shape, and a host-heavy shape with slower ASUs.
const GRID: [(usize, usize, f64); 4] = [(1, 2, 8.0), (2, 4, 8.0), (2, 8, 8.0), (4, 8, 4.0)];

struct Cell {
    label: String,
    hosts_ns: u64,
    asus_ns: u64,
    planned_ns: u64,
    predicted_ns: u64,
    balanced_ns: u64,
    reweights: u64,
    sorters_per_subset: usize,
    idle_identical: bool,
}

fn main() {
    let n = scaled_n(20_000, 4_000);
    let dsm = DsmConfig::new(8, 256, 4, 64);

    println!("F-PLACE: pass-1 makespan (ms) by placement strategy (n={n}, α=8, β=256)");
    let widths = [10usize, 10, 10, 10, 10, 10, 4];
    println!(
        "{}",
        row(
            &["cluster", "hosts", "asus", "planned", "predicted", "balanced", "k"]
                .map(String::from),
            &widths
        )
    );

    let cells: Vec<Cell> = GRID
        .par_iter()
        .map(|&(h, d, c)| {
            let cluster = ClusterConfig::era_2002(h, d, c);
            let data = generate_rec128(n, KeyDist::Uniform, 7);
            let splitters = choose_splitters(&data, dsm.alpha);
            let per_asu = split_across_asus(&data, d);
            let run_placed = |nodes: Vec<NodeId>| {
                run_pass1_placed::<Rec128>(
                    &cluster,
                    per_asu.clone(),
                    splitters.clone(),
                    &dsm,
                    &nodes,
                )
                .expect("manual layout runs")
            };

            // Naive manual layouts: every sorter on hosts (the paper's
            // static assignment) and every sorter on ASUs.
            let hosts_run = run_placed(
                (0..dsm.alpha)
                    .map(|i| NodeId::Host(static_host_of(i, dsm.alpha, h)))
                    .collect(),
            );
            let asus_run = run_placed((0..dsm.alpha).map(|i| NodeId::Asu(i % d)).collect());
            // The explicit all-hosts layout must be the Static mode,
            // reached by another door.
            let static_run = run_pass1(
                &cluster,
                per_asu.clone(),
                splitters.clone(),
                &dsm,
                LoadMode::Static,
            )
            .expect("static mode runs");
            assert_eq!(
                hosts_run.report.makespan, static_run.report.makespan,
                "placed all-hosts layout must match LoadMode::Static"
            );

            // Planned layout, then the same plan with the balancer armed
            // (defaults) and with deadbands no run can ever exceed.
            let planned = run_pass1(
                &cluster,
                per_asu.clone(),
                splitters.clone(),
                &dsm,
                LoadMode::Auto,
            )
            .expect("planned run");
            let plan = planned.plan.as_ref().expect("auto carries its plan");
            let balanced_cluster =
                cluster.with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
            let balanced = run_pass1(
                &balanced_cluster,
                per_asu.clone(),
                splitters.clone(),
                &dsm,
                LoadMode::Auto,
            )
            .expect("balanced run");
            let idle_cluster = cluster.with_balancer(
                BalanceSpec::every(SimDuration::from_micros(500))
                    .with_deadband(u64::MAX)
                    .with_cpu_deadband(SimDuration::from_nanos(u64::MAX)),
            );
            let idle = run_pass1(&idle_cluster, per_asu, splitters, &dsm, LoadMode::Auto)
                .expect("idle-balancer run");
            let idle_identical = idle.report.reweights == 0
                && idle.report.makespan == planned.report.makespan;

            Cell {
                label: format!("H{h}D{d}c{c:.0}"),
                hosts_ns: hosts_run.report.makespan.as_nanos(),
                asus_ns: asus_run.report.makespan.as_nanos(),
                planned_ns: planned.report.makespan.as_nanos(),
                predicted_ns: plan.estimate.makespan_ns as u64,
                balanced_ns: balanced.report.makespan.as_nanos(),
                reweights: balanced.report.reweights,
                sorters_per_subset: plan.assignment[1].len() / dsm.alpha,
                idle_identical,
            }
        })
        .collect();

    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut json = String::from("{\n");
    for c in &cells {
        println!(
            "{}",
            row(
                &[
                    c.label.clone(),
                    ms(c.hosts_ns),
                    ms(c.asus_ns),
                    ms(c.planned_ns),
                    ms(c.predicted_ns),
                    ms(c.balanced_ns),
                    c.sorters_per_subset.to_string(),
                ],
                &widths
            )
        );
        json.push_str(&format!(
            "  \"{}\": {{\"hosts_ns\": {}, \"asus_ns\": {}, \"planned_ns\": {}, \
             \"predicted_ns\": {}, \"balanced_ns\": {}, \"reweights\": {}, \
             \"sorters_per_subset\": {}}},\n",
            c.label,
            c.hosts_ns,
            c.asus_ns,
            c.planned_ns,
            c.predicted_ns,
            c.balanced_ns,
            c.reweights,
            c.sorters_per_subset
        ));
    }

    // Hard checks before the artifact is worth writing.
    for c in &cells {
        assert!(
            c.planned_ns <= c.hosts_ns,
            "{}: planned ({}) slower than all-hosts ({})",
            c.label,
            c.planned_ns,
            c.hosts_ns
        );
        assert!(
            c.planned_ns <= c.asus_ns,
            "{}: planned ({}) slower than all-ASUs ({})",
            c.label,
            c.planned_ns,
            c.asus_ns
        );
        assert!(
            c.idle_identical,
            "{}: balancer inside its deadband must not perturb the run",
            c.label
        );
    }
    json.push_str("  \"verified_planned_not_worse\": true,\n");
    json.push_str("  \"verified_idle_balancer_identical\": true\n}\n");
    write_results("BENCH_placement.json", &json);
}
