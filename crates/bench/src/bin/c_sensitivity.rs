//! **T2** — sensitivity to the host/ASU CPU ratio `c`.
//!
//! The paper simulates ASUs "with performance scaled to give c = 4, 8".
//! This sweep reruns the Figure 9 grid at both ratios for a fixed large
//! α: faster ASUs (c = 4) shift every crossover left and raise speedups
//! wherever the ASUs were the bottleneck.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist};
use lmas_emulator::ClusterConfig;
use lmas_sort::{choose_splitters, pass1_speedup, split_across_asus, DsmConfig, LoadMode};
use rayon::prelude::*;

const ASU_COUNTS: [usize; 6] = [2, 4, 8, 16, 32, 64];

fn main() {
    let n = scaled_n(1 << 18, 1 << 14);
    let beta = 4096;
    let alpha = 64usize;
    let data = generate_rec128(n, KeyDist::Uniform, 3);
    let splitters = choose_splitters(&data, alpha);
    let dsm = DsmConfig::new(alpha, beta, 8, 4096);

    println!("T2: pass-1 speedup at c = 4 vs c = 8 (α={alpha}, β={beta}, n={n}, H=1)");
    let widths = [6usize, 7, 7, 7, 7, 7, 7];
    let mut header = vec!["c".to_string()];
    header.extend(ASU_COUNTS.iter().map(|d| format!("D={d}")));
    println!("{}", row(&header, &widths));

    let mut csv = String::from("c");
    for d in ASU_COUNTS {
        csv.push_str(&format!(",D{d}"));
    }
    csv.push('\n');

    let mut by_c = Vec::new();
    for c in [4.0f64, 8.0] {
        // Independent emulations: sweep in parallel on the bench host.
        let series: Vec<f64> = ASU_COUNTS
            .par_iter()
            .map(|&d| {
                let cluster = ClusterConfig::era_2002(1, d, c);
                let per_asu = split_across_asus(&data, d);
                let (s, _, _) =
                    pass1_speedup(&cluster, per_asu, splitters.clone(), &dsm, LoadMode::Static)
                        .expect("c-sensitivity run");
                s
            })
            .collect();
        let mut cells = vec![format!("{c}")];
        cells.extend(series.iter().map(|s| format!("{s:.3}")));
        println!("{}", row(&cells, &widths));
        csv.push_str(&format!(
            "{c},{}\n",
            series.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
        ));
        by_c.push(series);
    }
    // Sanity: c=4 dominates c=8 wherever the ASUs bind (small D).
    let gain = by_c[0][0] / by_c[1][0];
    println!("c=4 over c=8 at D=2: {gain:.2}× (ASU-bound region)");
    write_results("c_sensitivity.csv", &csv);
}
