//! **BENCH-storage** — multi-disk ASU scaling and read-ahead ablation.
//!
//! Three cells, all on DSM-Sort in a deliberately disk-bound regime
//! (the brick's sequential rate is the bottleneck by construction, so
//! spindle count is the knob under test):
//!
//! 1. **Distribute scaling** — pass 1 (run formation) with d ∈
//!    {1, 2, 4, 8} spindles per ASU; reports per-ASU I/O throughput
//!    (bytes moved through the ASU's stripe set over the pass makespan).
//! 2. **Read-ahead ablation** — pass 2 (merge) at fixed d = 2 and equal
//!    pool size, demand paging (RA = 0) vs a 4-packet prefetch window.
//! 3. **Pool-size sweep** — pass 1 at d = 2 across pool sizes: for a
//!    streaming sort the pool is a staging area, not a reuse cache, so
//!    frames bound write-behind coalescing rather than hit rate.
//!
//! All printed figures are virtual-time quantities: two runs at the same
//! `LMAS_SCALE` are byte-identical (the determinism gate in `check.sh`
//! diffs exactly that).

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, NodeId, Rec128};
use lmas_emulator::{ClusterConfig, EmulationReport, StorageSpec};
use lmas_sort::{
    choose_splitters, run_pass1, run_pass2, split_across_asus, DsmConfig, LoadMode,
};
use rayon::prelude::*;

const D_SWEEP: [usize; 4] = [1, 2, 4, 8];
const POOL_SWEEP: [usize; 3] = [16, 64, 256];
const POOL_FRAMES: usize = 128;

/// Cluster in the disk-bound regime: 2 hosts, 2 ASU bricks at c = 4,
/// spindles at 10 MB/s so the stripe set, not the CPUs, paces pass 1.
fn cluster(spec: StorageSpec) -> ClusterConfig {
    let mut cfg = ClusterConfig::era_2002(2, 2, 4.0).with_storage(spec);
    cfg.disk.rate_bytes_per_sec = 10.0e6;
    cfg
}

/// The bench's storage substrate: one-block stripe units so every
/// 512 KiB packet (8 × 64 KiB blocks) spans the whole stripe set.
fn spec(d: usize) -> StorageSpec {
    let mut s = StorageSpec::striped(d).with_pool(POOL_FRAMES).with_sched_window(8);
    s.blocks_per_stripe = 1;
    s
}

/// Mean per-ASU I/O throughput in MB/s: bytes moved through ASU stripe
/// sets over the pass makespan, divided by the ASU count.
fn per_asu_mb_s(r: &EmulationReport<Rec128>) -> f64 {
    let (bytes, asus) = r
        .nodes
        .iter()
        .filter(|n| matches!(n.id, NodeId::Asu(_)))
        .fold((0u64, 0u64), |(b, c), n| (b + n.disk.2 + n.disk.3, c + 1));
    bytes as f64 / r.makespan.as_secs_f64() / asus as f64 / 1.0e6
}

fn main() {
    let n = scaled_n(1 << 17, 1 << 12);
    let mut dsm = DsmConfig::new(4, 4096, 4, 4);
    dsm.input_packet_records = 4096;
    let data = generate_rec128(n, KeyDist::Uniform, 3);
    let splitters = choose_splitters(&data, dsm.alpha);
    println!(
        "BENCH-storage: multi-disk ASUs on DSM-Sort (n={n}, α={}, β={}, H=2, D=2, c=4, 10 MB/s spindles)",
        dsm.alpha, dsm.beta
    );

    // Cell 1: distribute-phase scaling over spindle count.
    println!("-- pass 1 (distribute) vs spindles per ASU --");
    let widths = [4usize, 12, 16, 14];
    println!(
        "{}",
        row(
            &["d".into(), "makespan".into(), "per-ASU MB/s".into(), "pool hit %".into()],
            &widths
        )
    );
    let runs: Vec<(usize, f64, f64, f64)> = D_SWEEP
        .par_iter()
        .map(|&d| {
            let cfg = cluster(spec(d).with_auto_read_ahead());
            let per_asu = split_across_asus(&data, cfg.asus);
            let p1 = run_pass1(&cfg, per_asu, splitters.clone(), &dsm, LoadMode::Static)
                .expect("pass 1");
            let hit = p1
                .report
                .nodes
                .iter()
                .find(|nr| matches!(nr.id, NodeId::Asu(_)))
                .map(|nr| nr.pool.hit_rate() * 100.0)
                .unwrap_or(0.0);
            (
                d,
                p1.report.makespan.as_secs_f64(),
                per_asu_mb_s(&p1.report),
                hit,
            )
        })
        .collect();
    for &(d, mk, tp, hit) in &runs {
        println!(
            "{}",
            row(
                &[
                    format!("{d}"),
                    format!("{mk:.4}s"),
                    format!("{tp:.2}"),
                    format!("{hit:.1}"),
                ],
                &widths
            )
        );
    }
    let tp_of = |d: usize| runs.iter().find(|r| r.0 == d).expect("swept").2;
    let ratio_d4 = tp_of(4) / tp_of(1);
    let ratio_d8 = tp_of(8) / tp_of(1);
    println!("  per-ASU I/O throughput scaling: d=4/d=1 = {ratio_d4:.2}x, d=8/d=1 = {ratio_d8:.2}x");

    // Cell 2: read-ahead ablation on the merge phase (fixed d = 2,
    // equal pool size). Pass-1 runs are produced once and merged twice.
    println!("-- pass 2 (merge) read-ahead ablation at d=2 --");
    let base = cluster(spec(2));
    let p1 = run_pass1(
        &base,
        split_across_asus(&data, base.asus),
        splitters.clone(),
        &dsm,
        LoadMode::Static,
    )
    .expect("pass 1 for ablation");
    let merge_makespan = |ra: usize| {
        let mut cfg = cluster(spec(2).with_read_ahead(ra));
        // The merge interleaves reads from γ₁ different runs, so the
        // drive's sequential prefetch window does not apply: staging is
        // the pool's job (the knob under ablation), not the device's.
        cfg.disk.readahead_window = 0;
        run_pass2(&cfg, p1.runs_per_asu.clone(), splitters.clone(), &dsm)
            .expect("pass 2")
            .report
            .makespan
            .as_secs_f64()
    };
    let ra0 = merge_makespan(0);
    let ra4 = merge_makespan(4);
    let reduction_pct = (1.0 - ra4 / ra0) * 100.0;
    println!("  RA=0 (demand paging): {ra0:.4}s");
    println!("  RA=4 (pipelined):     {ra4:.4}s  ({reduction_pct:.1}% shorter)");

    // Cell 3: pool-size sweep on pass 1 at d = 2.
    println!("-- pass 1 pool-size sweep at d=2 --");
    let pool_runs: Vec<(usize, f64, u64, u64)> = POOL_SWEEP
        .par_iter()
        .map(|&frames| {
            let mut s = spec(2).with_auto_read_ahead();
            s.pool_frames = frames;
            let cfg = cluster(s);
            let p = run_pass1(
                &cfg,
                split_across_asus(&data, cfg.asus),
                splitters.clone(),
                &dsm,
                LoadMode::Static,
            )
            .expect("pool sweep");
            let (wb, wb_blocks) = p
                .report
                .nodes
                .iter()
                .find(|nr| matches!(nr.id, NodeId::Asu(_)))
                .map(|nr| (nr.pool.writebacks, nr.pool.writeback_blocks))
                .unwrap_or((0, 0));
            (frames, p.report.makespan.as_secs_f64(), wb, wb_blocks)
        })
        .collect();
    let pw = [8usize, 12, 12, 14];
    println!(
        "{}",
        row(
            &["pool".into(), "makespan".into(), "writebacks".into(), "wb blocks".into()],
            &pw
        )
    );
    for &(frames, mk, wb, wbb) in &pool_runs {
        println!(
            "{}",
            row(
                &[format!("{frames}"), format!("{mk:.4}s"), format!("{wb}"), format!("{wbb}")],
                &pw
            )
        );
    }

    // Machine-readable artifact.
    let mut json = String::from("{\n  \"distribute_scaling\": [\n");
    for (i, &(d, mk, tp, hit)) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"disks\": {d}, \"makespan_s\": {mk:.6}, \"per_asu_mb_s\": {tp:.3}, \"pool_hit_pct\": {hit:.2}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"throughput_ratio_d4_over_d1\": {ratio_d4:.3},\n  \"throughput_ratio_d8_over_d1\": {ratio_d8:.3},\n"
    ));
    json.push_str(&format!(
        "  \"merge_read_ahead\": {{\"ra0_makespan_s\": {ra0:.6}, \"ra4_makespan_s\": {ra4:.6}, \"reduction_pct\": {reduction_pct:.2}}},\n"
    ));
    json.push_str("  \"pool_sweep\": [\n");
    for (i, &(frames, mk, wb, wbb)) in pool_runs.iter().enumerate() {
        let comma = if i + 1 == pool_runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"frames\": {frames}, \"makespan_s\": {mk:.6}, \"writebacks\": {wb}, \"writeback_blocks\": {wbb}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    write_results("BENCH_storage.json", &json);
}
