//! **T5** — shared-ASU interference and adaptation.
//!
//! Section 1: "network storage is a shared resource, and storage-based
//! computation should not occur if it interferes with storage access for
//! other applications"; Section 8 flags performance isolation as future
//! work. This experiment dials up background tenants on the ASUs
//! (consuming a fraction of ASU CPU) and measures DSM-Sort pass-1
//! speedup for fixed α values versus the model-adaptive pick, which sees
//! the *effective* host/ASU ratio and backs off the distribute order as
//! the ASUs get busier.
//!
//! Expected shape: fixed large α degrades steeply (the offloaded
//! distribute now contends with tenants); the adaptive configuration
//! degrades gracefully toward the passive baseline (speedup → 1) and
//! never falls far below it.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, generate_rec8, KeyDist, Rec128, Rec8};
use lmas_emulator::ClusterConfig;
use lmas_sched::{run_scheduled, ArrivalSpec, SchedSpec};
use lmas_sim::SimTime;
use lmas_sort::{
    adaptive_alpha, choose_splitters, pass1_speedup, run_pass1_baseline, split_across_asus,
    DsmConfig, LoadMode,
};
use rayon::prelude::*;

fn main() {
    let n = scaled_n(1 << 17, 1 << 14);
    let beta = 4096;
    let d = 16usize;
    let data = generate_rec128(n, KeyDist::Uniform, 5);
    let backgrounds = [0.0f64, 0.25, 0.5, 0.75, 0.9];

    println!("T5: DSM-Sort pass-1 speedup vs background ASU load (n={n}, H=1, D={d}, c=8)");
    let widths = [10usize, 8, 8, 8, 8, 8];
    let mut header = vec!["series".to_string()];
    header.extend(backgrounds.iter().map(|b| format!("bg={b}")));
    println!("{}", row(&header, &widths));
    let mut csv = String::from("series");
    for b in backgrounds {
        csv.push_str(&format!(",bg{b}"));
    }
    csv.push('\n');

    let measure = |alpha: usize, bg: f64| -> f64 {
        let cluster = ClusterConfig::era_2002(1, d, 8.0).with_background(bg, 0.0);
        let splitters = choose_splitters(&data, alpha);
        let dsm = DsmConfig::new(alpha, beta, 8, 4096);
        let per_asu = split_across_asus(&data, d);
        let (s, _, _) =
            pass1_speedup(&cluster, per_asu, splitters, &dsm, LoadMode::Static).expect("run");
        s
    };

    // The adaptive α picks come from the closed-form model (no
    // emulation), so they are computed up front; every (α, background)
    // cell is then an independent emulation and the full grid — fixed
    // series and adaptive — fans out across threads at once. Results
    // return in input order, keeping output byte-identical to the serial
    // sweep.
    let picks: Vec<usize> = backgrounds
        .iter()
        .map(|&b| {
            let cluster = ClusterConfig::era_2002(1, d, 8.0).with_background(b, 0.0);
            adaptive_alpha::<Rec128>(&cluster, beta) as usize
        })
        .collect();
    let mut jobs: Vec<(usize, f64)> = Vec::new();
    for alpha in [16usize, 256] {
        jobs.extend(backgrounds.iter().map(|&b| (alpha, b)));
    }
    jobs.extend(picks.iter().zip(&backgrounds).map(|(&p, &b)| (p, b)));
    let grid: Vec<f64> = jobs.par_iter().map(|&(a, b)| measure(a, b)).collect();

    let nb = backgrounds.len();
    for (i, alpha) in [16usize, 256].into_iter().enumerate() {
        let series = &grid[i * nb..(i + 1) * nb];
        let mut cells = vec![format!("α={alpha}")];
        cells.extend(series.iter().map(|s| format!("{s:.3}")));
        println!("{}", row(&cells, &widths));
        csv.push_str(&format!(
            "alpha{alpha},{}\n",
            series.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
        ));
    }

    let adaptive = &grid[2 * nb..];
    let mut cells = vec!["adaptive".to_string()];
    cells.extend(adaptive.iter().map(|s| format!("{s:.3}")));
    println!("{}", row(&cells, &widths));
    println!(
        "  (adaptive α picks per load: {})",
        picks.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    );
    csv.push_str(&format!(
        "adaptive,{}\n",
        adaptive.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
    ));

    // Scheduler-routed series: the adaptive α pick per load, but the
    // job enters through the multi-tenant scheduler (arrival →
    // admission gate → merged-run emulator) rather than run_pass1
    // directly. Speedup is against the passive baseline on the same
    // seeded input; tracking the adaptive row shows the scheduler
    // stack preserves the interference-adaptation story end to end.
    let sched_seed = 0x5C4E_D202u64;
    // run_scheduled derives job 0's data seed this way; regenerate the
    // identical input for the baseline run.
    let data_seed = sched_seed ^ 0x9E37_79B9_7F4A_7C15u64;
    let sched: Vec<f64> = backgrounds
        .par_iter()
        .map(|&bg| {
            let cluster = ClusterConfig::era_2002(1, d, 8.0).with_background(bg, 0.0);
            let alpha = adaptive_alpha::<Rec8>(&cluster, beta) as usize;
            let dsm = DsmConfig::new(alpha, beta, 8, 4096);
            let sdata = generate_rec8(n, KeyDist::Uniform, data_seed);
            let splitters = choose_splitters(&sdata, alpha);
            let per_asu = split_across_asus(&sdata, d);
            let base =
                run_pass1_baseline::<Rec8>(&cluster, per_asu, splitters, &dsm).expect("baseline");
            let spec = SchedSpec::new(ArrivalSpec::new().job(0, 0, SimTime::ZERO), vec![n])
                .with_seed(sched_seed);
            let out = run_scheduled(&cluster, &dsm, &spec).expect("scheduled run");
            assert_eq!(out.completed(), 1, "the scheduled job completes");
            base.report.makespan.as_nanos() as f64 / out.makespan.as_nanos() as f64
        })
        .collect();
    let mut cells = vec!["sched".to_string()];
    cells.extend(sched.iter().map(|s| format!("{s:.3}")));
    println!("{}", row(&cells, &widths));
    csv.push_str(&format!(
        "sched,{}\n",
        sched.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
    ));
    write_results("interference.csv", &csv);
}
