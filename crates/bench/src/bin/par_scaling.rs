//! **BENCH-par-sim** — partitioned parallel kernel scaling.
//!
//! Sweeps an H×D grid of cluster shapes (up to a 256-node emulation)
//! × worker thread counts {1, 2, 4} over the full two-pass DSM-Sort —
//! load-managed placement (`Managed` + round-robin routing), so every
//! host carries sorters and the partitions stay busy — and reports, per
//! cell:
//!
//! * virtual makespan (must be thread-count invariant for a fixed
//!   partition count — the golden gates enforce the stronger contract),
//! * total dispatched events and the **critical path** (the busiest
//!   partition's dispatch count): `dispatch_speedup = dispatched /
//!   critical_dispatched` is the kernel's virtual parallelism — the
//!   end-to-end speedup an ideal one-core-per-partition machine gets,
//!   and the figure the acceptance gate checks (≥2× at 4 threads on the
//!   256-node cell),
//! * conservative-window count and the cross-partition message rate
//!   (remote messages per dispatched event) — the cost side of the
//!   lookahead protocol.
//!
//! All JSON figures are virtual-time quantities and byte-deterministic;
//! wall-clock timings go to stdout only. `LMAS_SCALE` shrinks the
//! record counts, `LMAS_RESULTS_DIR` redirects the artifact.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, RoutingPolicy};
use lmas_emulator::ClusterConfig;
use lmas_sort::{run_dsm_sort, DsmConfig, DsmOutcome, LoadMode};
use std::fmt::Write as _;
use std::time::Instant;

/// (hosts, asus) cells: 20, 64, and 256 emulated nodes.
const GRID: [(usize, usize); 3] = [(4, 16), (16, 48), (64, 192)];
const THREADS: [usize; 3] = [1, 2, 4];

struct Cell {
    label: String,
    nodes: usize,
    threads: usize,
    makespan_ns: u64,
    dispatched: u64,
    critical: u64,
    partitions: u64,
    windows: u64,
    remote: u64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.dispatched as f64 / self.critical.max(1) as f64
    }
    fn remote_rate(&self) -> f64 {
        self.remote as f64 / self.dispatched.max(1) as f64
    }
}

/// Sum a per-pass figure over both passes of the sort.
fn per_pass<R: lmas_core::Record>(out: &DsmOutcome<R>, f: impl Fn(&lmas_emulator::EmulationReport<R>) -> u64) -> u64 {
    f(&out.pass1) + f(&out.pass2)
}

fn main() {
    let dsm = DsmConfig::new(4, 256, 8, 64);
    println!("BENCH-par-sim: partitioned kernel scaling (H×D grid × threads, two-pass DSM-Sort)");
    let widths = [10usize, 7, 8, 13, 11, 10, 9, 8, 9, 11];
    println!(
        "{}",
        row(
            &[
                "cell".into(),
                "nodes".into(),
                "threads".into(),
                "makespan_ns".into(),
                "dispatched".into(),
                "critical".into(),
                "speedup".into(),
                "windows".into(),
                "remote".into(),
                "wall_ms".into(),
            ],
            &widths
        )
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &(hosts, asus) in &GRID {
        // Work scales with the host count so every shape keeps each
        // node meaningfully busy.
        let n = scaled_n(8_192 * hosts as u64, 4_096);
        let data = generate_rec128(n, KeyDist::Uniform, 7);
        for &threads in &THREADS {
            let cluster = ClusterConfig::era_2002(hosts, asus, 8.0).with_threads(threads);
            let wall = Instant::now();
            let out = run_dsm_sort(&cluster, data.clone(), &dsm, LoadMode::Managed(RoutingPolicy::RoundRobin))
                .expect("par_scaling sort runs");
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

            let dispatched = per_pass(&out, |r| r.dispatched);
            // Sequential runs ARE their own critical path; parallel runs
            // report the busiest partition per pass.
            let critical = per_pass(&out, |r| {
                r.par.as_ref().map_or(r.dispatched, |s| s.critical_dispatched)
            });
            let partitions = out
                .pass1
                .par
                .as_ref()
                .map_or(1, |s| s.partitions as u64);
            let windows = per_pass(&out, |r| r.par.as_ref().map_or(0, |s| s.windows));
            let remote = per_pass(&out, |r| r.par.as_ref().map_or(0, |s| s.remote_messages));
            let cell = Cell {
                label: format!("H{hosts}D{asus}_t{threads}"),
                nodes: hosts + asus,
                threads,
                makespan_ns: out.total.as_nanos(),
                dispatched,
                critical,
                partitions,
                windows,
                remote,
            };
            println!(
                "{}",
                row(
                    &[
                        format!("H{hosts}D{asus}"),
                        cell.nodes.to_string(),
                        threads.to_string(),
                        cell.makespan_ns.to_string(),
                        dispatched.to_string(),
                        critical.to_string(),
                        format!("{:.2}", cell.speedup()),
                        windows.to_string(),
                        remote.to_string(),
                        format!("{wall_ms:.1}"),
                    ],
                    &widths
                )
            );
            cells.push(cell);
        }
    }

    // Acceptance gate: ≥2× end-to-end dispatch speedup at 4 threads on
    // the ≥256-node cell.
    let gate = cells
        .iter()
        .find(|c| c.nodes >= 256 && c.threads == 4)
        .expect("grid carries a 256-node cell");
    assert!(
        gate.speedup() >= 2.0,
        "dispatch speedup {:.2} < 2.0 at 4 threads on the {}-node cell",
        gate.speedup(),
        gate.nodes
    );
    println!(
        "acceptance: {} speedup {:.2} (>= 2.0) with {} partitions",
        gate.label,
        gate.speedup(),
        gate.partitions
    );

    // Deterministic JSON artifact: virtual-time figures only.
    let mut json = String::from("{\n");
    // Every cell row ends with a comma: the acceptance key below closes
    // the object, keeping the artifact valid JSON.
    for c in cells.iter() {
        let _ = writeln!(
            json,
            "  \"{}\": {{\"nodes\": {}, \"threads\": {}, \"partitions\": {}, \"makespan_ns\": {}, \"dispatched\": {}, \"critical_dispatched\": {}, \"dispatch_speedup\": {:.4}, \"windows\": {}, \"remote_messages\": {}, \"remote_msg_rate\": {:.4}}},",
            c.label,
            c.nodes,
            c.threads,
            c.partitions,
            c.makespan_ns,
            c.dispatched,
            c.critical,
            c.speedup(),
            c.windows,
            c.remote,
            c.remote_rate(),
        );
    }
    let _ = writeln!(
        json,
        "  \"verified_speedup_ge_2_at_4_threads_256_nodes\": true\n}}"
    );
    write_results("BENCH_par_sim.json", &json);
}
