//! **BENCH-par-sim** — partitioned parallel kernel scaling.
//!
//! Sweeps an H×D grid of cluster shapes (up to a 256-node emulation)
//! × worker thread counts {1, 2, 4, 8} × workload variants over the
//! full two-pass DSM-Sort — load-managed placement (`Managed` +
//! round-robin routing), so every host carries sorters and the
//! partitions stay busy. Variants per shape:
//!
//! * `plain` — fault-free,
//! * `f` — a mid-pass-1 ASU crash (with recovery) plus a lossy
//!   host→ASU link, exercising the static fault timelines under
//!   partitions,
//! * `fb` — the same fault plan with the snapshot balancer armed.
//!
//! Per cell the bench reports virtual makespan, total dispatched events
//! and the **critical path** (the busiest partition's dispatch count):
//! `dispatch_speedup = dispatched / critical_dispatched` is the
//! kernel's virtual parallelism — the end-to-end speedup an ideal
//! one-core-per-partition machine gets. Acceptance gates (asserted at
//! full scale): ≥4.5× fault-free at 8 threads and ≥2× on the
//! faulted+balanced run at 4 threads, both on the 256-node cell. The
//! JSON artifact also carries each parallel cell's window-width
//! histogram (virtual ns, deterministic) and barrier-wait histogram
//! (wall-clock — **not** deterministic; `check.sh` strips it before
//! diffing).
//!
//! All other JSON figures are virtual-time quantities and
//! byte-deterministic; wall-clock timings go to stdout only.
//! `LMAS_SCALE` shrinks the record counts (gates are skipped below full
//! scale), `LMAS_RESULTS_DIR` redirects the artifact.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, RoutingPolicy};
use lmas_emulator::{asu_index, BalanceSpec, ClusterConfig, FaultSpec};
use lmas_sim::{FaultPlan, LogHist, SimDuration, SimTime};
use lmas_sort::{run_dsm_sort, run_dsm_sort_faulty, DsmConfig, DsmOutcome, LoadMode};
use std::fmt::Write as _;
use std::time::Instant;

/// (hosts, asus) cells: 20, 64, and 256 emulated nodes.
const GRID: [(usize, usize); 3] = [(4, 16), (16, 48), (64, 192)];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const VARIANTS: [&str; 3] = ["plain", "f", "fb"];

struct Cell {
    label: String,
    nodes: usize,
    threads: usize,
    variant: &'static str,
    makespan_ns: u64,
    dispatched: u64,
    critical: u64,
    partitions: u64,
    windows: u64,
    remote: u64,
    window_width_hist: LogHist,
    barrier_wait_hist: LogHist,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.dispatched as f64 / self.critical.max(1) as f64
    }
    fn remote_rate(&self) -> f64 {
        self.remote as f64 / self.dispatched.max(1) as f64
    }
}

/// Sum a per-pass figure over both passes of the sort.
fn per_pass<R: lmas_core::Record>(
    reports: &[&lmas_emulator::EmulationReport<R>],
    f: impl Fn(&lmas_emulator::EmulationReport<R>) -> u64,
) -> u64 {
    reports.iter().map(|r| f(r)).sum()
}

/// Sparse JSON rendering of a log2 histogram: `{"<bucket>": count}` for
/// the non-empty buckets, bucket = floor(log2(value)).
fn hist_json(h: &LogHist) -> String {
    let pairs: Vec<String> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("\"{i}\": {c}"))
        .collect();
    format!("{{{}}}", pairs.join(", "))
}

fn main() {
    let dsm = DsmConfig::new(4, 256, 8, 64);
    let full_scale = std::env::var("LMAS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .is_none_or(|s| s >= 1.0);
    println!(
        "BENCH-par-sim: partitioned kernel scaling (H×D grid × threads × variants, two-pass DSM-Sort)"
    );
    let widths = [10usize, 7, 8, 8, 13, 11, 10, 9, 8, 9, 11];
    println!(
        "{}",
        row(
            &[
                "cell".into(),
                "nodes".into(),
                "variant".into(),
                "threads".into(),
                "makespan_ns".into(),
                "dispatched".into(),
                "critical".into(),
                "speedup".into(),
                "windows".into(),
                "remote".into(),
                "wall_ms".into(),
            ],
            &widths
        )
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &(hosts, asus) in &GRID {
        // Work scales with the host count so every shape keeps each
        // node meaningfully busy.
        let n = scaled_n(8_192 * hosts as u64, 4_096);
        let data = generate_rec128(n, KeyDist::Uniform, 7);
        let base = ClusterConfig::era_2002(hosts, asus, 8.0);
        let mode = LoadMode::Managed(RoutingPolicy::RoundRobin);

        // The sequential fault-free run fixes the crash instant every
        // faulted variant of this shape reuses, whatever the scale.
        let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("par_scaling sort runs");
        let t_crash = SimTime(seq.pass1.makespan.0 / 3);
        let plan = FaultPlan::new()
            .crash(asu_index(&base, 1), t_crash)
            .recover(asu_index(&base, 1), t_crash + SimDuration::from_millis(40))
            .link_loss(0, asu_index(&base, 0), SimTime::ZERO, 0.05);
        let spec = FaultSpec::with_plan(plan);

        for &variant in &VARIANTS {
            for &threads in &THREADS {
                let mut cluster = base.with_threads(threads);
                if variant == "fb" {
                    cluster = cluster.with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
                }
                let wall = Instant::now();
                let out: DsmOutcome<_>;
                let reports: Vec<&lmas_emulator::EmulationReport<_>>;
                let faulty;
                if variant == "plain" {
                    out = run_dsm_sort(&cluster, data.clone(), &dsm, mode)
                        .expect("par_scaling sort runs");
                    reports = vec![&out.pass1, &out.pass2];
                } else {
                    faulty = run_dsm_sort_faulty(&cluster, &spec, data.clone(), &dsm, mode)
                        .expect("par_scaling faulted sort runs");
                    reports = [Some(&faulty.pass1), faulty.repair.as_ref(), Some(&faulty.pass2)]
                        .into_iter()
                        .flatten()
                        .collect();
                }
                let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

                let dispatched = per_pass(&reports, |r| r.dispatched);
                // Sequential runs ARE their own critical path; parallel
                // runs report the busiest partition per pass.
                let critical = per_pass(&reports, |r| {
                    r.par.as_ref().map_or(r.dispatched, |s| s.critical_dispatched)
                });
                let partitions = reports[0].par.as_ref().map_or(1, |s| s.partitions as u64);
                let windows = per_pass(&reports, |r| r.par.as_ref().map_or(0, |s| s.windows));
                let remote =
                    per_pass(&reports, |r| r.par.as_ref().map_or(0, |s| s.remote_messages));
                let mut window_width_hist = LogHist::new();
                let mut barrier_wait_hist = LogHist::new();
                for r in &reports {
                    if let Some(s) = &r.par {
                        window_width_hist.absorb(&s.window_width_hist);
                        barrier_wait_hist.absorb(&s.barrier_wait_hist);
                    }
                }
                let makespan_ns: u64 = reports.iter().map(|r| r.makespan.as_nanos()).sum();
                let cell = Cell {
                    label: format!("H{hosts}D{asus}_{variant}_t{threads}"),
                    nodes: hosts + asus,
                    threads,
                    variant,
                    makespan_ns,
                    dispatched,
                    critical,
                    partitions,
                    windows,
                    remote,
                    window_width_hist,
                    barrier_wait_hist,
                };
                println!(
                    "{}",
                    row(
                        &[
                            format!("H{hosts}D{asus}"),
                            cell.nodes.to_string(),
                            variant.into(),
                            threads.to_string(),
                            cell.makespan_ns.to_string(),
                            dispatched.to_string(),
                            critical.to_string(),
                            format!("{:.2}", cell.speedup()),
                            windows.to_string(),
                            remote.to_string(),
                            format!("{wall_ms:.1}"),
                        ],
                        &widths
                    )
                );
                cells.push(cell);
            }
        }
    }

    // Acceptance gates (full scale only — shrunken runs carry too few
    // events for the ratios to be meaningful): ≥4.5× fault-free at 8
    // threads and ≥2× faulted+balanced at 4 threads, on the ≥256-node
    // cell.
    let pick = |variant: &str, threads: usize| {
        cells
            .iter()
            .find(|c| c.nodes >= 256 && c.variant == variant && c.threads == threads)
            .expect("grid carries a 256-node cell")
    };
    let plain8 = pick("plain", 8);
    let fb4 = pick("fb", 4);
    if full_scale {
        assert!(
            plain8.speedup() >= 4.5,
            "dispatch speedup {:.2} < 4.5 fault-free at 8 threads on the {}-node cell",
            plain8.speedup(),
            plain8.nodes
        );
        assert!(
            fb4.speedup() >= 2.0,
            "dispatch speedup {:.2} < 2.0 faulted+balanced at 4 threads on the {}-node cell",
            fb4.speedup(),
            fb4.nodes
        );
    }
    println!(
        "acceptance: {} speedup {:.2} (>= 4.5), {} speedup {:.2} (>= 2.0){}",
        plain8.label,
        plain8.speedup(),
        fb4.label,
        fb4.speedup(),
        if full_scale { "" } else { " [reduced scale: gates not asserted]" }
    );

    // JSON artifact: virtual-time figures plus the (wall-clock,
    // nondeterministic) barrier-wait histogram — strip `barrier_wait`
    // lines before byte-diffing two runs.
    let mut json = String::from("{\n");
    // Every cell row ends with a comma: the acceptance keys below close
    // the object, keeping the artifact valid JSON.
    for c in cells.iter() {
        let _ = writeln!(
            json,
            "  \"{}\": {{\"nodes\": {}, \"variant\": \"{}\", \"threads\": {}, \"partitions\": {}, \"makespan_ns\": {}, \"dispatched\": {}, \"critical_dispatched\": {}, \"dispatch_speedup\": {:.4}, \"windows\": {}, \"remote_messages\": {}, \"remote_msg_rate\": {:.4},",
            c.label,
            c.nodes,
            c.variant,
            c.threads,
            c.partitions,
            c.makespan_ns,
            c.dispatched,
            c.critical,
            c.speedup(),
            c.windows,
            c.remote,
            c.remote_rate(),
        );
        let _ = writeln!(json, "    \"window_width_hist\": {},", hist_json(&c.window_width_hist));
        let _ = writeln!(json, "    \"barrier_wait_hist\": {}}},", hist_json(&c.barrier_wait_hist));
    }
    let _ = writeln!(
        json,
        "  \"verified_speedup_ge_4_5_at_8_threads_256_nodes\": {},",
        full_scale && plain8.speedup() >= 4.5
    );
    let _ = writeln!(
        json,
        "  \"verified_faulted_balanced_speedup_ge_2_at_4_threads_256_nodes\": {}\n}}",
        full_scale && fb4.speedup() >= 2.0
    );
    write_results("BENCH_par_sim.json", &json);
}
