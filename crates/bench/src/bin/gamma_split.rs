//! **T3** — splitting the merge fan-in between ASUs and hosts.
//!
//! Section 4.3: "The merge is divided between hosts and ASUs, so that
//! γ₁·γ₂ = γ", and Section 3.3 notes the fan-in "may vary to adjust the
//! balance of load between sort pipeline phases". This experiment forms
//! runs once (pass 1), then replays pass 2 under every power-of-two
//! (γ₁, γ₂) split of the same total γ, reporting merge-pass makespans.
//! Expected shape: pushing fan-in onto the ASU pool helps until the ASUs
//! (at 1/c speed) saturate; the model-picked split sits near the
//! minimum.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, Rec128};
use lmas_emulator::ClusterConfig;
use lmas_sort::{choose_splitters, run_pass1, run_pass2, split_across_asus, DsmConfig, LoadMode};
use rayon::prelude::*;

fn main() {
    // Geometry chosen so (a) each (subset, ASU) pair holds many runs —
    // runs per subset per ASU = n / (β·α·D) = 2^18 / (64·4·16) = 64 — and
    // (b) the ASU pool (16 ASUs at c=4 → 4 host-equivalents) is strong
    // enough relative to the 2 hosts that an interior (γ1, γ2) split is
    // optimal rather than dumping all fan-in on the hosts.
    let n = scaled_n(1 << 18, 1 << 16);
    let d = 16usize;
    let alpha = 4usize;
    let beta = 64usize;
    let gamma_total = 1024usize;
    let cluster = ClusterConfig::era_2002(2, d, 4.0);
    let data = generate_rec128(n, KeyDist::Uniform, 11);
    let splitters = choose_splitters(&data, alpha);

    // Form runs once with a generous pass-1 config.
    let p1cfg = DsmConfig::new(alpha, beta, gamma_total, 4096);
    let per_asu = split_across_asus(&data, d);
    let p1 = run_pass1(&cluster, per_asu, splitters.clone(), &p1cfg, LoadMode::Static)
        .expect("run formation");

    println!(
        "T3: merge-pass makespan vs (γ1, γ2) split (n={n}, D={d}, α={alpha}, β={beta}, γ={gamma_total})"
    );
    let widths = [5usize, 6, 12];
    println!("{}", row(&["γ1", "γ2", "merge time"].map(String::from), &widths));
    let mut csv = String::from("gamma1,gamma2,merge_seconds\n");

    // Every (γ1, γ2) split replays pass 2 independently over the same
    // frozen pass-1 runs, so the whole sweep fans out across threads;
    // results come back in input order, keeping output byte-identical to
    // the serial sweep.
    let g1s: Vec<usize> = (0..=8).map(|e| 1usize << e).collect();
    let times: Vec<f64> = g1s
        .par_iter()
        .map(|&g1| {
            let g2cap = gamma_total.div_ceil(g1) * d + d; // striping slack
            let dsm = DsmConfig::new(alpha, beta, g1, g2cap);
            let p2 = run_pass2(&cluster, p1.runs_per_asu.clone(), splitters.clone(), &dsm)
                .expect("merge pass");
            let sorted = lmas_sort::verify_rec128_output(&p2.output, n).expect("sorted");
            assert_eq!(sorted.len() as u64, n);
            p2.report.makespan.as_secs_f64()
        })
        .collect();

    let mut best = (0usize, 0usize, f64::INFINITY);
    for (&g1, &t) in g1s.iter().zip(&times) {
        println!(
            "{}",
            row(
                &[g1.to_string(), gamma_total.div_ceil(g1).to_string(), format!("{t:.4}s")],
                &widths
            )
        );
        csv.push_str(&format!("{g1},{},{t:.6}\n", gamma_total.div_ceil(g1)));
        if t < best.2 {
            best = (g1, gamma_total.div_ceil(g1), t);
        }
    }
    println!("best split: γ1={} γ2={} ({:.4}s)", best.0, best.1, best.2);

    let model = cluster.pipeline_model(Rec128::SIZE);
    let (mg1, mg2) = model.pick_gamma_split_bounded(gamma_total as u64, gamma_total as u64);
    println!("model pick:  γ1={mg1} γ2={mg2}");
    write_results("gamma_split.csv", &csv);
}

use lmas_core::Record;
