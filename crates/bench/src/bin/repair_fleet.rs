//! **F-RF** — fleet-scale durability under background re-replication:
//! measured replica-distribution trajectories vs the mean-field ODE.
//!
//! Sweeps fleet size × per-node repair bandwidth under seeded Poisson
//! crash/recovery schedules (`FaultPlan::poisson`) with the repair
//! engine on, averages the measured replica histogram trajectory over a
//! few seeds, and compares mean available copies and the absorbed
//! (data-loss) fraction against `mean_field_trajectory` (Sun et al.,
//! arXiv 1701.00335). The sweep spans an undersized repair tier — where
//! the fleet cannot keep up and blocks drain to zero copies — through a
//! comfortable one where the distribution hugs the replication target.
//!
//! Every cell asserts the model error bounds before the artifact is
//! written: the bench is a *validation gate*, not just a figure.
//!
//! Output: `results/BENCH_repair.json` with per-(fleet, bandwidth)
//! trajectory errors, loss fractions, and repair counters.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    packetize, EdgeKind, FlowGraph, Functor, NodeId, Placement, Rec8, RoutingPolicy, Work,
};
use lmas_emulator::{
    mean_copies, mean_field_trajectory, run_job_with_faults, ClusterConfig, EmulationReport,
    FaultSpec, Job, MeanFieldParams, RepairSpec,
};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use rayon::prelude::*;
use std::collections::BTreeMap;

const MIB: u64 = 1 << 20;
/// Replication target.
const TARGET: u32 = 3;
/// Blocks per fleet node (population scales with the fleet).
const BLOCKS_PER_NODE: u64 = 10;
const BLOCK_BYTES: u64 = 64 * MIB;
/// Mean node lifetime / downtime of the Poisson schedule.
const MTTF_SECS: u64 = 1_800;
const MTTR_SECS: u64 = 120;
/// Trajectory comparison grid.
const SAMPLE_SECS: u64 = 60;
/// Seeds averaged per cell (the ODE is the N→∞ mean; a finite fleet
/// fluctuates around it).
const SEEDS: [u64; 3] = [11, 23, 47];

/// Fleet sizes × per-node repair bandwidth (MiB/s). At 1 MiB/s one
/// block takes 64 s to re-replicate — against a 1 800 s node lifetime
/// the fleet falls behind and loses data; at 16 MiB/s repair wins.
const FLEETS: [usize; 2] = [16, 32];
const BW_MIB: [u64; 3] = [1, 4, 16];

/// Error tolerances (absolute, in copies against a target of 3, and in
/// absorbed block fraction). The fluid model is an *optimistic* bound:
/// it assumes any up node can source any degraded block with perfect
/// pacing, while the engine binds each repair to an up holder, loses
/// in-flight work to crashes, and drains bursty per-node queues — so
/// measured mean copies sit at or below the ODE everywhere
/// (`SLACK_ABOVE` absorbs finite-fleet fluctuation). While repair
/// capacity exceeds failure demand the gap stays small (`TIGHT_TOL`);
/// in the saturated tier (ρ > 1) the ~15 % effective-capacity loss
/// compounds over the horizon — queues outlive their source nodes and
/// bounce — so the binding checks there are the one-sided ones
/// (measured never beats the fluid bound, loss at least the ODE's) and
/// `SAT_TOL` is only a sanity cap on the divergence.
const SLACK_ABOVE: f64 = 0.15;
const TIGHT_TOL: f64 = 0.35;
const SAT_TOL: f64 = 1.6;
const LOSS_TOL: f64 = 0.12;

struct Cell {
    fleet: usize,
    bw_mib: u64,
    /// Repair utilization: copy-destruction demand over fluid capacity.
    rho: f64,
    /// max_t |measured mean copies − ODE mean copies| (seed-averaged).
    max_err: f64,
    /// max_t (measured − ODE): how far the fleet ever beats the bound.
    max_above: f64,
    loss_measured: f64,
    loss_ode: f64,
    enqueued: u64,
    completed: u64,
    reassigned: u64,
    bytes_repaired: u64,
}

/// One seeded fleet run: a tiny foreground relay job (repair dominates
/// the calendar) on a 1-host × `fleet`-ASU cluster, the Poisson fault
/// schedule over every ASU, and the repair engine on.
fn fleet_run(fleet: usize, bw: f64, seed: u64, horizon: SimDuration) -> EmulationReport<Rec8> {
    let mut cfg = ClusterConfig::era_2002(1, fleet, 8.0);
    // Multi-hour horizons: bin utilization by the minute, or the
    // per-node ledgers dwarf the simulation itself.
    cfg.util_bin = SimDuration::from_secs(60);
    let plan = FaultPlan::poisson(
        seed,
        cfg.hosts..cfg.hosts + cfg.asus,
        SimDuration::from_secs(MTTF_SECS),
        SimDuration::from_secs(MTTR_SECS),
        horizon,
    );
    let rs = RepairSpec::new(BLOCKS_PER_NODE * fleet as u64, TARGET, BLOCK_BYTES, bw)
        .with_sampling(SimDuration::from_secs(SAMPLE_SECS));
    let spec = FaultSpec::with_plan(plan).with_repair(rs);

    let relay = |_| -> Box<dyn Functor<Rec8>> {
        Box::new(MapFunctor::new("relay", Work::compares(4), |r: Rec8| r))
    };
    let data: Vec<Rec8> = (0..200u32).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, relay);
    let mid = g.add_stage(fleet, relay);
    g.connect(src, mid, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Host(0));
    for i in 0..fleet {
        placement.assign(mid, i, NodeId::Asu(i));
    }
    let mut inputs = BTreeMap::new();
    inputs.insert((src.0, 0usize), packetize(data, 50));
    run_job_with_faults(
        &cfg,
        &spec,
        Job {
            graph: g,
            placement,
            inputs,
        },
    )
    .expect("fleet run completes")
}

/// Evaluate a piecewise-constant sampled trajectory at `t`: the last
/// sample at or before `t` (the initial state before the first sample).
fn hist_at(report: &EmulationReport<Rec8>, t: SimTime, blocks: u64) -> Vec<f64> {
    let mut last: Option<&Vec<u64>> = None;
    for s in &report.repair_trajectory {
        if s.at > t {
            break;
        }
        last = Some(&s.hist);
    }
    match last {
        Some(h) => h.iter().map(|&c| c as f64 / blocks as f64).collect(),
        None => {
            let mut x = vec![0.0; TARGET as usize + 1];
            x[TARGET as usize] = 1.0;
            x
        }
    }
}

fn main() {
    // `LMAS_SCALE` shrinks the horizon for smoke runs (check.sh).
    let horizon_secs = scaled_n(6 * 3600, 1_200);
    let horizon = SimDuration::from_secs(horizon_secs);
    let grid: Vec<SimTime> = (0..=horizon_secs / SAMPLE_SECS)
        .map(|k| SimTime(k * SAMPLE_SECS * 1_000_000_000))
        .collect();

    println!(
        "F-RF: replica durability vs mean-field ODE (r={TARGET}, {BLOCKS_PER_NODE} blocks/node, \
         {}MiB blocks, mttf={MTTF_SECS}s, mttr={MTTR_SECS}s, horizon={horizon_secs}s, \
         {} seeds/cell)",
        BLOCK_BYTES / MIB,
        SEEDS.len()
    );

    let jobs: Vec<(usize, u64)> = FLEETS
        .iter()
        .flat_map(|&fleet| BW_MIB.iter().map(move |&bw_mib| (fleet, bw_mib)))
        .collect();
    let cells: Vec<Cell> = jobs
        .par_iter()
        .map(|&(fleet, bw_mib)| {
            let bw = bw_mib as f64 * MIB as f64;
            let blocks = BLOCKS_PER_NODE * fleet as u64;
            let runs: Vec<EmulationReport<Rec8>> = SEEDS
                .par_iter()
                .map(|&seed| fleet_run(fleet, bw, seed, horizon))
                .collect();

            let ode = mean_field_trajectory(
                &MeanFieldParams {
                    nodes: fleet,
                    target: TARGET,
                    blocks,
                    mttf: SimDuration::from_secs(MTTF_SECS),
                    mttr: SimDuration::from_secs(MTTR_SECS),
                    block_repair: SimDuration::from_secs_f64(BLOCK_BYTES as f64 / bw),
                },
                &grid,
            );

            let mut max_err = 0.0f64;
            let mut max_above = f64::MIN;
            for (i, &t) in grid.iter().enumerate() {
                let measured: f64 = runs
                    .iter()
                    .map(|r| mean_copies(&hist_at(r, t, blocks)))
                    .sum::<f64>()
                    / runs.len() as f64;
                let diff = measured - mean_copies(&ode[i]);
                max_err = max_err.max(diff.abs());
                max_above = max_above.max(diff);
            }
            let t_end = *grid.last().expect("non-empty grid");
            let loss_measured: f64 = runs
                .iter()
                .map(|r| hist_at(r, t_end, blocks)[0])
                .sum::<f64>()
                / runs.len() as f64;
            let loss_ode = ode.last().expect("non-empty ode")[0];

            let sum = |f: fn(&EmulationReport<Rec8>) -> u64| -> u64 {
                runs.iter().map(f).sum::<u64>() / runs.len() as u64
            };
            // Copy-destruction demand (each node destroys its
            // `BLOCKS_PER_NODE · r` copies every mttf) over the fluid
            // repair capacity (one block per `block_repair` per up node).
            let up_frac = MTTF_SECS as f64 / (MTTF_SECS + MTTR_SECS) as f64;
            let block_repair = BLOCK_BYTES as f64 / bw;
            let rho = BLOCKS_PER_NODE as f64 * TARGET as f64 * block_repair
                / (MTTF_SECS as f64 * up_frac);
            Cell {
                fleet,
                bw_mib,
                rho,
                max_err,
                max_above,
                loss_measured,
                loss_ode,
                enqueued: sum(|r| r.repair.enqueued),
                completed: sum(|r| r.repair.completed),
                reassigned: sum(|r| r.repair.reassigned),
                bytes_repaired: sum(|r| r.repair.bytes_repaired),
            }
        })
        .collect();

    let widths = [6usize, 8, 6, 10, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "fleet",
                "bw",
                "rho",
                "max_err",
                "max_abv",
                "loss_sim",
                "loss_ode",
                "enq/seed",
                "comp/seed"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut json = String::from("{\n");
    for c in &cells {
        println!(
            "{}",
            row(
                &[
                    c.fleet.to_string(),
                    format!("{}MiB", c.bw_mib),
                    format!("{:.2}", c.rho),
                    format!("{:.3}", c.max_err),
                    format!("{:.3}", c.max_above),
                    format!("{:.3}", c.loss_measured),
                    format!("{:.3}", c.loss_ode),
                    c.enqueued.to_string(),
                    c.completed.to_string(),
                ],
                &widths
            )
        );
        json.push_str(&format!(
            "  \"d{}/bw{}\": {{\"rho\": {:.4}, \"max_mean_copy_err\": {:.4}, \
             \"max_above_ode\": {:.4}, \"loss_measured\": {:.4}, \"loss_ode\": {:.4}, \
             \"enqueued\": {}, \"completed\": {}, \"reassigned\": {}, \"bytes_repaired\": {}}},\n",
            c.fleet,
            c.bw_mib,
            c.rho,
            c.max_err,
            c.max_above,
            c.loss_measured,
            c.loss_ode,
            c.enqueued,
            c.completed,
            c.reassigned,
            c.bytes_repaired
        ));
    }

    // The validation gate. Everywhere: the fleet never beats the fluid
    // bound by more than fluctuation slack. Unsaturated (ρ < 0.8):
    // trajectory and terminal loss track the ODE tightly. Saturated:
    // the known capacity gap compounds, so only the loose cap applies —
    // but loss must be at least the ODE's (repair cannot do better than
    // the fluid limit says).
    for c in &cells {
        let id = format!("d{}/bw{}", c.fleet, c.bw_mib);
        assert!(
            c.max_above <= SLACK_ABOVE,
            "{id}: measured beats the fluid bound by {:.3} (> {SLACK_ABOVE})",
            c.max_above
        );
        if c.rho < 0.8 {
            assert!(
                c.max_err <= TIGHT_TOL,
                "{id}: mean-copies error {:.3} exceeds {TIGHT_TOL} at rho {:.2}",
                c.max_err,
                c.rho
            );
            assert!(
                (c.loss_measured - c.loss_ode).abs() <= LOSS_TOL,
                "{id}: loss fraction {:.3} vs ODE {:.3} exceeds {LOSS_TOL}",
                c.loss_measured,
                c.loss_ode
            );
        } else {
            assert!(
                c.max_err <= SAT_TOL,
                "{id}: saturated-tier error {:.3} exceeds {SAT_TOL}",
                c.max_err
            );
            assert!(
                c.loss_measured >= c.loss_ode - LOSS_TOL,
                "{id}: measured loss {:.3} implausibly below ODE {:.3}",
                c.loss_measured,
                c.loss_ode
            );
        }
    }
    json.push_str(&format!(
        "  \"verified_mean_field\": {{\"slack_above\": {SLACK_ABOVE}, \"tight_tol\": {TIGHT_TOL}, \
         \"sat_tol\": {SAT_TOL}, \"loss_tol\": {LOSS_TOL}}}\n}}\n"
    ));
    write_results("BENCH_repair.json", &json);
}
