//! **F-TF** — per-step TerraFlow scaling (Section 4.1).
//!
//! "Thus data parallelism in ASUs may improve the first two steps of the
//! watershed computation considerably while offering limited improvement
//! of the final step." This experiment grows the ASU pool and times each
//! step: restructure (step 1) and the elevation sort (step 2) speed up;
//! the time-forward color propagation (step 3) stays flat — Amdahl's law
//! in a terrain pipeline.

use lmas_bench::{row, write_results};
use lmas_emulator::ClusterConfig;
use lmas_gis::{fractal_terrain, matches_oracle, run_terraflow};
use lmas_sort::{DsmConfig, LoadMode};
use rayon::prelude::*;

fn main() {
    let side = if lmas_bench::scale() < 1.0 { 65 } else { 257 };
    let grid = fractal_terrain(side, side, 0.55, 13);
    println!(
        "F-TF: TerraFlow per-step times vs #ASUs ({side}×{side} grid, {} cells, H=1, c=8)",
        side * side
    );
    let widths = [4usize, 12, 12, 12, 12, 11];
    println!(
        "{}",
        row(
            &["D", "step1", "step2(sort)", "step3", "total", "watersheds"].map(String::from),
            &widths
        )
    );
    let mut csv = String::from("d,step1_s,step2_s,step3_s,total_s,watersheds\n");

    let mut dsm = DsmConfig::new(8, 1024, 8, 4096);
    dsm.input_packet_records = 512;
    // One full TerraFlow pipeline per pool size, each an independent
    // emulation over the same grid — the four runs fan out across
    // threads and report in input order (output identical to serial).
    let ds = [2usize, 4, 8, 16];
    let outcomes: Vec<_> = ds
        .par_iter()
        .map(|&d| {
            let cluster = ClusterConfig::era_2002(1, d, 8.0);
            run_terraflow(&cluster, &grid, &dsm, LoadMode::Static).expect("terraflow")
        })
        .collect();
    // The pipeline is deterministic per pool size; auditing the smallest
    // run against the sequential oracle matches the serial sweep's
    // check-the-first behavior.
    assert!(
        matches_oracle(&grid, &outcomes[0]),
        "labels differ from oracle"
    );
    for (&d, out) in ds.iter().zip(&outcomes) {
        let (t1, t2, t3) = out.times;
        println!(
            "{}",
            row(
                &[
                    d.to_string(),
                    t1.to_string(),
                    t2.to_string(),
                    t3.to_string(),
                    out.total().to_string(),
                    out.watersheds.to_string(),
                ],
                &widths
            )
        );
        csv.push_str(&format!(
            "{d},{:.6},{:.6},{:.6},{:.6},{}\n",
            t1.as_secs_f64(),
            t2.as_secs_f64(),
            t3.as_secs_f64(),
            out.total().as_secs_f64(),
            out.watersheds
        ));
    }
    write_results("terraflow_steps.csv", &csv);
}
