//! Determinism gate: run the pinned seeded DSM-Sort emulation and print
//! every virtual-time observable. `scripts/check.sh` runs this twice and
//! diffs the output — any nondeterminism in the calendar, dispatch loop,
//! resource accounting, or trace rendering shows up as a diff.
//!
//! The same figures are frozen in the emulator's golden test
//! (`crates/emulator/tests/golden.rs`), which pins them across simulator
//! rewrites; this binary guards run-to-run stability within one build.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    generate_rec128, packetize, EdgeKind, FlowGraph, Functor, KeyDist, NodeId, Placement, Rec8,
    Record, RoutingPolicy, Work,
};
use lmas_emulator::{
    asu_index, run_job_with_faults, BalanceSpec, ClusterConfig, EmulationReport, FaultSpec, Job,
    RepairSpec,
};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use lmas_sort::{run_dsm_sort, run_dsm_sort_faulty, DsmConfig, LoadMode};
use std::collections::BTreeMap;

/// FNV-1a over a byte stream; stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn main() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0).with_trace(4096);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let n = 5_000;
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned sort runs");

    println!("pass1.makespan_ns {}", out.pass1.makespan.as_nanos());
    println!("pass2.makespan_ns {}", out.pass2.makespan.as_nanos());
    println!("total_ns {}", out.total.as_nanos());
    println!("pass1.dispatched {}", out.pass1.dispatched);
    println!("pass2.dispatched {}", out.pass2.dispatched);
    println!(
        "records_processed {} {}",
        out.pass1.records_processed, out.pass2.records_processed
    );
    let key_hash = fnv1a(
        out.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let out_records: usize = out.output.iter().map(|p| p.len()).sum();
    println!("output.records {out_records} output.key_fnv {key_hash:016x}");
    for (pass, report) in [("pass1", &out.pass1), ("pass2", &out.pass2)] {
        let util_hash = fnv1a(
            report
                .nodes
                .iter()
                .flat_map(|nr| nr.cpu_series.iter())
                .flat_map(|u| u.to_bits().to_le_bytes()),
        );
        println!("{pass}.cpu_series_fnv {util_hash:016x}");
        let render = report.trace.render();
        println!(
            "{pass}.trace lines {} fnv {:016x}",
            report.trace.len(),
            fnv1a(render.bytes())
        );
    }

    // Chaos section: the same sort under a pinned fault plan (crash one
    // ASU mid-pass-1 plus a lossy host→ASU link). Everything the fault
    // layer does — bounces, retries, fencing, detection, repair — draws
    // from seeded state, so these figures must be run-to-run stable too.
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let plan = FaultPlan::new()
        .crash(asu_index(&cluster, 1), SimTime(out.pass1.makespan.0 / 3))
        .link_loss(0, asu_index(&cluster, 0), SimTime::ZERO, 0.05);
    let spec = FaultSpec::with_plan(plan);
    let chaos = run_dsm_sort_faulty(
        &cluster,
        &spec,
        data,
        &dsm,
        LoadMode::Managed(RoutingPolicy::SimpleRandomization),
    )
    .expect("pinned chaos sort runs");
    println!(
        "chaos.pass1.makespan_ns {}",
        chaos.pass1.makespan.as_nanos()
    );
    println!("chaos.total_ns {}", chaos.total.as_nanos());
    println!("chaos.pass1.dispatched {}", chaos.pass1.dispatched);
    let s = chaos.pass1.fault;
    println!(
        "chaos.fault retries {} nacks {} drops {} lost {} abandoned {} fenced {} detections {}",
        s.retries,
        s.nacks,
        s.drops,
        s.lost_queued_records,
        s.abandoned_records,
        s.fenced_instances,
        s.detections
    );
    println!("chaos.recovered_records {}", chaos.recovered_records);
    let chaos_hash = fnv1a(
        chaos
            .output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let chaos_records: usize = chaos.output.iter().map(|p| p.len()).sum();
    println!("chaos.output.records {chaos_records} chaos.output.key_fnv {chaos_hash:016x}");

    // Planner section: the same sort with planner-chosen placement and
    // the runtime balancer armed. The plan search is RNG-free and the
    // balancer samples at virtual instants, so placement, plan reports,
    // reweight count, and all makespans must be run-to-run stable.
    let cluster = ClusterConfig::era_2002(2, 4, 8.0)
        .with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let auto = run_dsm_sort(&cluster, data, &dsm, LoadMode::Auto).expect("pinned auto sort runs");
    println!("auto.pass1.makespan_ns {}", auto.pass1.makespan.as_nanos());
    println!("auto.pass2.makespan_ns {}", auto.pass2.makespan.as_nanos());
    println!("auto.total_ns {}", auto.total.as_nanos());
    println!(
        "auto.reweights {} {}",
        auto.pass1.reweights, auto.pass2.reweights
    );
    let plan = auto.plan.as_ref().expect("auto carries its plan");
    println!(
        "auto.plan k {} predicted_ns {} {}",
        plan.sorters_per_subset,
        plan.pass1_predicted.as_nanos(),
        plan.pass2_predicted.as_nanos()
    );
    println!(
        "auto.plan.report_fnv {:016x} {:016x}",
        fnv1a(plan.pass1_report_json.bytes()),
        fnv1a(plan.pass2_report_json.bytes())
    );
    let auto_hash = fnv1a(
        auto.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let auto_records: usize = auto.output.iter().map(|p| p.len()).sum();
    println!("auto.output.records {auto_records} auto.output.key_fnv {auto_hash:016x}");

    // Parallel section: the pinned multi-host sort pushed through the
    // partitioned engine (threads=4 on two hosts → two partitions, real
    // OS threads, real barriers). Every virtual-time observable and the
    // merged trace render must be identical run to run regardless of
    // how the threads interleave.
    let cluster = ClusterConfig::era_2002(2, 4, 8.0)
        .with_trace(4096)
        .with_threads(4);
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let par =
        run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned parallel sort runs");
    let stats = par.pass1.par.expect("multi-host threaded run parallelizes");
    println!(
        "par.partitions {} par.windows {} par.remote_messages {}",
        stats.partitions, stats.windows, stats.remote_messages
    );
    println!(
        "par.dispatched {} par.critical_dispatched {}",
        par.pass1.dispatched, stats.critical_dispatched
    );
    println!("par.pass1.makespan_ns {}", par.pass1.makespan.as_nanos());
    println!("par.pass2.makespan_ns {}", par.pass2.makespan.as_nanos());
    println!("par.total_ns {}", par.total.as_nanos());
    let par_hash = fnv1a(
        par.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let par_records: usize = par.output.iter().map(|p| p.len()).sum();
    println!("par.output.records {par_records} par.output.key_fnv {par_hash:016x}");
    for (pass, report) in [("pass1", &par.pass1), ("pass2", &par.pass2)] {
        println!(
            "par.{pass}.trace lines {} fnv {:016x}",
            report.trace.len(),
            fnv1a(report.trace.render().bytes())
        );
    }

    // Faulted-parallel section: a pinned chaos plan (ASU crash +
    // recovery + lossy link) through the partitioned engine. Fault
    // injection runs as static timelines and per-partition controllers,
    // so every fault observable — bounces, retries, fencing, detection,
    // repair — must be identical run to run under real threads. The
    // window-width histogram is a virtual-time quantity and diffs too;
    // the barrier-wait histogram is wall-clock and is deliberately NOT
    // printed.
    let cluster = ClusterConfig::era_2002(2, 4, 8.0)
        .with_trace(4096)
        .with_threads(4);
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let t_crash = SimTime(par.pass1.makespan.0 / 3);
    let plan = FaultPlan::new()
        .crash(asu_index(&cluster, 1), t_crash)
        .recover(
            asu_index(&cluster, 1),
            t_crash + SimDuration::from_millis(40),
        )
        .link_loss(0, asu_index(&cluster, 0), SimTime::ZERO, 0.05);
    let spec = FaultSpec::with_plan(plan);
    let pf = run_dsm_sort_faulty(
        &cluster,
        &spec,
        data,
        &dsm,
        LoadMode::Managed(RoutingPolicy::SimpleRandomization),
    )
    .expect("pinned faulted parallel sort runs");
    let stats = pf
        .pass1
        .par
        .as_ref()
        .expect("faulted run uses the partitioned engine");
    assert!(
        pf.pass1.par_fallback.is_none(),
        "no fallback reason on an eligible faulted run"
    );
    println!(
        "parfault.partitions {} parfault.windows {} parfault.remote_messages {}",
        stats.partitions, stats.windows, stats.remote_messages
    );
    println!(
        "parfault.dispatched {} parfault.critical_dispatched {}",
        pf.pass1.dispatched, stats.critical_dispatched
    );
    println!(
        "parfault.window_width_fnv {:016x}",
        fnv1a(
            stats
                .window_width_hist
                .buckets
                .iter()
                .flat_map(|c| c.to_le_bytes())
        )
    );
    println!(
        "parfault.pass1.makespan_ns {}",
        pf.pass1.makespan.as_nanos()
    );
    println!("parfault.total_ns {}", pf.total.as_nanos());
    let s = pf.pass1.fault;
    println!(
        "parfault.fault retries {} nacks {} drops {} lost {} abandoned {} fenced {} detections {}",
        s.retries,
        s.nacks,
        s.drops,
        s.lost_queued_records,
        s.abandoned_records,
        s.fenced_instances,
        s.detections
    );
    println!("parfault.recovered_records {}", pf.recovered_records);
    let pf_hash = fnv1a(
        pf.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let pf_records: usize = pf.output.iter().map(|p| p.len()).sum();
    println!("parfault.output.records {pf_records} parfault.output.key_fnv {pf_hash:016x}");
    for (pass, report) in [("pass1", &pf.pass1), ("pass2", &pf.pass2)] {
        println!(
            "parfault.{pass}.trace lines {} fnv {:016x}",
            report.trace.len(),
            fnv1a(report.trace.render().bytes())
        );
    }

    // Balanced-parallel section: the snapshot balancer through the
    // partitioned engine. Instances self-report backlog on the sampling
    // grid and the single balancer actor reweights from the previous
    // window's snapshot, so the reweight count and every downstream
    // observable must be run-to-run stable under real threads.
    let cluster = ClusterConfig::era_2002(2, 4, 8.0)
        .with_trace(4096)
        .with_threads(4)
        .with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let pb = run_dsm_sort(
        &cluster,
        data,
        &dsm,
        LoadMode::Managed(RoutingPolicy::SimpleRandomization),
    )
    .expect("pinned balanced parallel sort runs");
    let stats = pb
        .pass1
        .par
        .as_ref()
        .expect("balanced run uses the partitioned engine");
    assert!(
        pb.pass1.par_fallback.is_none(),
        "no fallback reason on a snapshot-balanced run"
    );
    println!(
        "parbal.partitions {} parbal.windows {} parbal.remote_messages {}",
        stats.partitions, stats.windows, stats.remote_messages
    );
    println!(
        "parbal.reweights {} {}",
        pb.pass1.reweights, pb.pass2.reweights
    );
    println!("parbal.pass1.makespan_ns {}", pb.pass1.makespan.as_nanos());
    println!("parbal.total_ns {}", pb.total.as_nanos());
    let pb_hash = fnv1a(
        pb.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    let pb_records: usize = pb.output.iter().map(|p| p.len()).sum();
    println!("parbal.output.records {pb_records} parbal.output.key_fnv {pb_hash:016x}");
    for (pass, report) in [("pass1", &pb.pass1), ("pass2", &pb.pass2)] {
        println!(
            "parbal.{pass}.trace lines {} fnv {:016x}",
            report.trace.len(),
            fnv1a(report.trace.render().bytes())
        );
    }

    // Coded section: the pinned sort with a coded distribute edge
    // (r = 2), sequentially and through the partitioned kernel. Coded
    // frames are cut by deterministic FCFS buffering in the downstream
    // fan-out, so makespans, dispatch counts, the output stream, and
    // the measured ASU shuffle bytes must be identical run to run and
    // across thread counts.
    for (tag, threads) in [("coded", 1usize), ("parcoded", 4)] {
        let cluster = ClusterConfig::era_2002(2, 4, 8.0).with_threads(threads);
        let dsm = DsmConfig::new(8, 256, 4, 64).with_coded(2);
        let data = generate_rec128(n, KeyDist::Uniform, 1);
        let c = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static)
            .expect("pinned coded sort runs");
        if threads > 1 {
            assert!(
                c.pass1.par.is_some(),
                "multi-host threaded coded run parallelizes"
            );
            assert!(
                c.pass1.par_fallback.is_none(),
                "no fallback reason on a coded run"
            );
        }
        println!("{tag}.pass1.makespan_ns {}", c.pass1.makespan.as_nanos());
        println!("{tag}.pass2.makespan_ns {}", c.pass2.makespan.as_nanos());
        println!("{tag}.total_ns {}", c.total.as_nanos());
        println!(
            "{tag}.dispatched {} {}",
            c.pass1.dispatched, c.pass2.dispatched
        );
        let asu_tx: u64 = c
            .pass1
            .nodes
            .iter()
            .filter(|nr| matches!(nr.id, NodeId::Asu(_)))
            .map(|nr| nr.nic_bytes_tx)
            .sum();
        println!("{tag}.pass1.asu_nic_bytes_tx {asu_tx}");
        let c_hash = fnv1a(
            c.output
                .iter()
                .flat_map(|p| p.records())
                .flat_map(|r| r.key().to_le_bytes()),
        );
        let c_records: usize = c.output.iter().map(|p| p.len()).sum();
        println!("{tag}.output.records {c_records} {tag}.output.key_fnv {c_hash:016x}");
    }

    // Repair section: a seeded Poisson fault schedule with the
    // background re-replication engine on, sequentially and through the
    // partitioned kernel. Engine decisions are pure functions of its
    // load state, same-instant completions and destination writes are
    // applied in canonical assignment-id order, and the coordinator
    // coalesces same-instant trajectory samples, so every repair
    // observable — counters, final replica histogram, the whole
    // trajectory, per-node source bytes — must be identical run to run
    // and across thread counts.
    for (tag, threads) in [("repair", 1usize), ("parrepair", 4)] {
        let r = repair_run(threads);
        if threads > 1 {
            assert!(
                r.par.is_some(),
                "multi-host threaded repair run parallelizes"
            );
            assert!(
                r.par_fallback.is_none(),
                "no fallback reason on a repair run"
            );
        }
        println!("{tag}.makespan_ns {}", r.makespan.as_nanos());
        println!("{tag}.dispatched {}", r.dispatched);
        let s = r.repair;
        println!(
            "{tag}.repair enqueued {} completed {} cancelled {} reassigned {} wasted {} \
             blocks_lost {} bytes_repaired {}",
            s.enqueued,
            s.completed,
            s.cancelled,
            s.reassigned,
            s.wasted,
            s.blocks_lost,
            s.bytes_repaired
        );
        println!("{tag}.replica_hist {:?}", r.replica_hist);
        let traj_fnv = fnv1a(r.repair_trajectory.iter().flat_map(|p| {
            p.at.0
                .to_le_bytes()
                .into_iter()
                .chain(p.hist.iter().flat_map(|c| c.to_le_bytes()))
        }));
        println!(
            "{tag}.trajectory points {} fnv {traj_fnv:016x}",
            r.repair_trajectory.len()
        );
        println!("{tag}.src_bytes {:?}", r.repair_src_bytes);
        println!("{tag}.detections {}", r.fault.detections);
    }

    // Scheduler section: a pinned multi-tenant run (seeded Poisson
    // arrivals, admission gate, naive vs residual-planned placement).
    // Gate decisions are pure functions of predicted footprints and
    // the calendar, so dispatch order, queue waits, every latency,
    // the event log, and the rendered JSON must be identical run to
    // run.
    let cluster = ClusterConfig::era_2002(4, 4, 2.0);
    let sdsm = DsmConfig::new(2, 256, 4, 64);
    let arrivals = lmas_sched::ArrivalSpec::poisson(
        0x5C4ED,
        2,
        SimDuration::from_millis(8),
        SimDuration::from_millis(40),
        &[1],
    );
    for (tag, aware) in [("sched.naive", false), ("sched.aware", true)] {
        let spec = lmas_sched::SchedSpec::new(arrivals.clone(), vec![2_000])
            .with_policy(lmas_sched::Policy::WeightedFair)
            .with_quota(2)
            .with_queue_cap(16)
            .with_load_limit(1.5)
            .with_aware(aware)
            .with_seed(0x5C4ED);
        let out =
            lmas_sched::run_scheduled(&cluster, &sdsm, &spec).expect("pinned scheduled run");
        println!(
            "{tag}.jobs {} completed {} rejected {}",
            out.jobs.len(),
            out.completed(),
            out.rejections.len()
        );
        println!("{tag}.makespan_ns {}", out.makespan.as_nanos());
        println!(
            "{tag}.events {} json_fnv {:016x}",
            out.events.len(),
            fnv1a(out.to_json().bytes())
        );
    }
}

/// The repair scenario: source on host 0 → relay on every ASU → sink on
/// the last host, a seeded Poisson crash/recovery schedule, and repair
/// at 256 MiB/s over 96 × 256 KiB blocks at replication target 3.
fn repair_run(threads: usize) -> EmulationReport<Rec8> {
    const HOSTS: usize = 4;
    const ASUS: usize = 8;
    let cfg = ClusterConfig::era_2002(HOSTS, ASUS, 8.0).with_threads(threads);
    let plan = FaultPlan::poisson(
        0xD15C,
        HOSTS..HOSTS + ASUS,
        SimDuration::from_millis(200),
        SimDuration::from_millis(10),
        SimDuration::from_millis(160),
    );
    let rs = RepairSpec::new(96, 3, 256 << 10, 256.0 * (1u64 << 20) as f64)
        .with_sampling(SimDuration::from_millis(10));
    let spec = FaultSpec::with_plan(plan).with_repair(rs);

    let relay = |_| -> Box<dyn Functor<Rec8>> {
        Box::new(MapFunctor::new("relay", Work::compares(4), |r: Rec8| r))
    };
    let data: Vec<Rec8> = (0..2_000u32).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, relay);
    let mid = g.add_stage(ASUS, relay);
    let dst = g.add_stage(1, relay);
    g.connect(src, mid, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .unwrap();
    g.connect(mid, dst, RoutingPolicy::Static, EdgeKind::Set)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Host(0));
    for i in 0..ASUS {
        placement.assign(mid, i, NodeId::Asu(i));
    }
    placement.assign(dst, 0, NodeId::Host(HOSTS - 1));
    let mut inputs = BTreeMap::new();
    inputs.insert((src.0, 0usize), packetize(data, 50));
    run_job_with_faults(
        &cfg,
        &spec,
        Job {
            graph: g,
            placement,
            inputs,
        },
    )
    .expect("pinned repair run succeeds")
}
