//! **T4** — routing-policy ablation under skew (Section 3.3).
//!
//! "The routing of records across functor instances may be responsive to
//! dynamic load conditions visible to the system. In some cases,
//! randomized routing techniques like simple randomization (SR) may
//! reduce data dependencies…" This ablation runs the Figure 10 workload
//! under every load-managed routing policy plus the static baseline and
//! reports makespan and the host-utilization gap.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::RoutingPolicy;
use lmas_emulator::ClusterConfig;
use lmas_sort::skew::{fig10_data_per_asu, uniform_assuming_splitters};
use lmas_sort::{run_pass1, DsmConfig, LoadMode};
use rayon::prelude::*;

fn main() {
    let n = scaled_n(1 << 19, 1 << 15);
    let d = 16usize;
    let h = 2usize;
    let alpha = 16usize;
    let cluster = ClusterConfig::era_2002(h, d, 8.0);
    let dsm = DsmConfig::new(alpha, 4096, 8, 4096);
    let splitters = uniform_assuming_splitters(alpha);

    println!("T4: routing policies on the skewed Figure-10 workload (n={n}, H={h}, D={d})");
    let widths = [22usize, 12, 10, 10, 9];
    println!(
        "{}",
        row(
            &["policy", "makespan", "host0", "host1", "gap"].map(String::from),
            &widths
        )
    );
    let mut csv = String::from("policy,makespan_s,host0_util,host1_util,gap\n");

    let modes: [(&str, LoadMode); 4] = [
        ("static (no control)", LoadMode::Static),
        ("round-robin", LoadMode::Managed(RoutingPolicy::RoundRobin)),
        ("simple randomization", LoadMode::Managed(RoutingPolicy::SimpleRandomization)),
        ("load-aware", LoadMode::Managed(RoutingPolicy::LoadAware)),
    ];
    // Each policy runs the same fixed-seed workload in its own emulation;
    // the four runs are independent, so they fan out across threads and
    // report in input order (output identical to the serial sweep).
    let results: Vec<(f64, f64, f64)> = modes
        .par_iter()
        .map(|&(_, mode)| {
            let data = fig10_data_per_asu(n, d, 42);
            let run = run_pass1(&cluster, data, splitters.clone(), &dsm, mode).expect("run");
            let m0 = run.report.nodes[0].mean_cpu_util;
            let m1 = run.report.nodes[1].mean_cpu_util;
            (run.report.makespan.as_secs_f64(), m0, m1)
        })
        .collect();

    for ((name, _), (t, m0, m1)) in modes.iter().zip(results) {
        let gap = (m0 - m1).abs();
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{t:.4}s"),
                    format!("{:.1}%", m0 * 100.0),
                    format!("{:.1}%", m1 * 100.0),
                    format!("{:.3}", gap),
                ],
                &widths
            )
        );
        csv.push_str(&format!(
            "{name},{t:.6},{m0:.4},{m1:.4},{gap:.4}\n"
        ));
    }
    write_results("routing_ablation.csv", &csv);
}
