//! **BENCH-coded** (F-CS) — coded-shuffle distribute: storage for
//! network on the pass-1 shuffle.
//!
//! Four cells sweep the NIC-vs-disk cost ratio and the cluster shape
//! (H, D); each cell runs pass 1 under `LoadMode::Static` at coded
//! broadcast-group sizes r ∈ {1, 2, 4} and records the measured ASU
//! shuffle bytes (`nic_bytes_tx`) and makespan, then asks the planner
//! (`plan_pass1_coded`, scored on the same static layout) which r it
//! would pick. Gates, frozen as `verified_*` booleans in the artifact:
//!
//! 1. **1/r tracking** — measured shuffle bytes at every r stay within
//!    10% of `tx(1)/r` (the coded frame is the max of its r member
//!    packets, so the slack is multinomial padding, ~5% at r = 4).
//! 2. **Planner agreement** — the planner-chosen r equals the
//!    measured-best r on every cell (disk-bound cells degrade to
//!    r = 1; the NIC-bound cells pick r = 2 and r = 4).
//! 3. **Thread determinism** — a coded sort (r = 2) is byte-identical
//!    under the partitioned kernel at threads ∈ {1, 2, 4}, with no
//!    fallback reason.
//! 4. **r = 1 is the uncoded engine** — a sort explicitly configured
//!    with `with_coded(1)` reproduces the default-config sort exactly.
//!
//! Splitters are exact full-data quantiles (not the sampled
//! `choose_splitters`): equal bucket probabilities isolate the coding
//! overhead from splitter sampling skew, which would otherwise bias
//! every frame toward its group's largest bucket.

use lmas_bench::{row, scale, scaled_n, write_results};
use lmas_core::kernels::select_splitters;
use lmas_core::{generate_rec128, KeyDist, NodeId, Rec128, Record};
use lmas_emulator::{ClusterConfig, StorageSpec};
use lmas_sort::{plan_pass1_coded, run_dsm_sort, run_pass1, split_across_asus, DsmConfig, LoadMode};

const R_SWEEP: [usize; 3] = [1, 2, 4];
const SEED: u64 = 3;

/// FNV-1a over a byte stream; stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The bench's DSM shape: α = 8 subsets (so r ∈ {1, 2, 4} divide
/// evenly) and large input packets, which shrink the multinomial
/// frame-padding noise of cell gate 1.
fn bench_dsm(r: usize) -> DsmConfig {
    let mut dsm = DsmConfig::new(8, 256, 4, 64).with_coded(r);
    dsm.input_packet_records = 4096;
    dsm
}

/// ASU-side fine-grained stripe set: one-block 8 KiB stripe units so
/// each 512 KiB packet I/O spans all four spindles (the default 1 MiB
/// unit would land every per-packet request on spindle 0).
fn fine_striped(d: usize) -> StorageSpec {
    StorageSpec {
        disks: d,
        blocks_per_stripe: 1,
        block_bytes: 8 << 10,
        ..StorageSpec::default()
    }
}

struct Cell {
    name: &'static str,
    cluster: ClusterConfig,
}

fn cells() -> Vec<Cell> {
    let nic = |storage: Option<StorageSpec>| {
        let mut c = ClusterConfig::era_2002(8, 2, 1.0);
        if let Some(s) = storage {
            c = c.with_storage(s);
        }
        // A slow SAN (25 MB/s per NIC) makes the shuffle, not the
        // paper's CPU ratio, the resource the coding trade targets.
        c.link_bytes_per_sec = 25.0e6;
        c
    };
    vec![
        Cell { name: "disk_2x4", cluster: ClusterConfig::era_2002(2, 4, 8.0) },
        Cell { name: "disk_4x2", cluster: ClusterConfig::era_2002(4, 2, 8.0) },
        Cell { name: "nic_mild_8x2", cluster: nic(None) },
        Cell { name: "nic_strong_8x2", cluster: nic(Some(fine_striped(4))) },
    ]
}

struct RPoint {
    r: usize,
    makespan_ns: u64,
    asu_tx: u64,
    dev_pct: f64,
}

fn main() {
    let n = scaled_n(80_000, 20_000);
    let strict = scale() >= 1.0;
    println!("BENCH-coded: coded-shuffle distribute (n={n}, α=8, r ∈ {R_SWEEP:?})");

    let mut json = String::from("{\n  \"cells\": [\n");
    let mut all_tracking = true;
    let mut all_planner = true;
    let ncells = cells().len();
    for (ci, cell) in cells().into_iter().enumerate() {
        let data = generate_rec128(n, KeyDist::Uniform, SEED);
        let splitters = select_splitters(data.clone(), 8);
        let mut points: Vec<RPoint> = Vec::new();
        let mut tx1 = 0u64;
        for r in R_SWEEP {
            let dsm = bench_dsm(r);
            let per_asu = split_across_asus(&data, cell.cluster.asus);
            let p1 = run_pass1(&cell.cluster, per_asu, splitters.clone(), &dsm, LoadMode::Static)
                .expect("coded pass 1 runs");
            let tx: u64 = p1
                .report
                .nodes
                .iter()
                .filter(|nr| matches!(nr.id, NodeId::Asu(_)))
                .map(|nr| nr.nic_bytes_tx)
                .sum();
            if r == 1 {
                tx1 = tx;
            }
            let pred = tx1 as f64 / r as f64;
            points.push(RPoint {
                r,
                makespan_ns: p1.report.makespan.as_nanos(),
                asu_tx: tx,
                dev_pct: (tx as f64 - pred) / pred * 100.0,
            });
        }
        // Measured-best r: argmin makespan, ascending, strict < (a tie
        // keeps the smaller r, mirroring the planner's tie-break).
        let measured_best = points
            .iter()
            .fold((0usize, u64::MAX), |best, p| {
                if p.makespan_ns < best.1 { (p.r, p.makespan_ns) } else { best }
            })
            .0;
        let (planner_r, outcome) =
            plan_pass1_coded::<Rec128>(&cell.cluster, &bench_dsm(1), n, &R_SWEEP)
                .expect("coded plan sweep runs");
        let tracking = points.iter().all(|p| p.dev_pct.abs() <= 10.0);
        let agree = planner_r == measured_best;
        all_tracking &= tracking;
        all_planner &= agree;

        println!("-- {} (H={}, D={}) --", cell.name, cell.cluster.hosts, cell.cluster.asus);
        let widths = [3usize, 14, 12, 8];
        println!(
            "{}",
            row(&["r".into(), "makespan_ns".into(), "asu_tx".into(), "dev".into()], &widths)
        );
        for p in &points {
            println!(
                "{}",
                row(
                    &[
                        format!("{}", p.r),
                        format!("{}", p.makespan_ns),
                        format!("{}", p.asu_tx),
                        format!("{:+.1}%", p.dev_pct),
                    ],
                    &widths
                )
            );
        }
        println!(
            "  measured-best r={measured_best} planner r={planner_r} tracking={tracking} agree={agree}"
        );

        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"hosts\": {}, \"asus\": {}, \"sweep\": [\n",
            cell.name, cell.cluster.hosts, cell.cluster.asus
        ));
        for (i, p) in points.iter().enumerate() {
            let comma = if i + 1 == points.len() { "" } else { "," };
            json.push_str(&format!(
                "      {{\"r\": {}, \"makespan_ns\": {}, \"asu_nic_bytes_tx\": {}, \"dev_from_inverse_r_pct\": {:.2}}}{comma}\n",
                p.r, p.makespan_ns, p.asu_tx, p.dev_pct
            ));
        }
        json.push_str("    ],\n    \"predicted_curve\": [\n");
        let curve = &outcome.report.coded_curve;
        for (i, c) in curve.iter().enumerate() {
            let comma = if i + 1 == curve.len() { "" } else { "," };
            json.push_str(&format!(
                "      {{\"r\": {}, \"predicted_makespan_ns\": {}, \"predicted_nic_bytes\": {}, \"extra_disk_bytes\": {}}}{comma}\n",
                c.r, c.predicted_makespan_ns, c.predicted_nic_bytes, c.extra_disk_bytes
            ));
        }
        let comma = if ci + 1 == ncells { "" } else { "," };
        json.push_str(&format!(
            "    ],\n    \"measured_best_r\": {measured_best}, \"planner_r\": {planner_r}, \
             \"cell_inverse_r_tracking_ok\": {tracking}, \"cell_planner_agreement_ok\": {agree}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");

    // Gate 3: a coded sort is byte-identical across thread counts under
    // the partitioned kernel, with no fallback.
    let coded_threads = |threads: usize| {
        let cluster = ClusterConfig::era_2002(2, 4, 8.0).with_threads(threads);
        let data = generate_rec128(n, KeyDist::Uniform, SEED);
        let out = run_dsm_sort(&cluster, data, &bench_dsm(2), LoadMode::Static)
            .expect("coded threaded sort runs");
        if threads > 1 {
            assert!(out.pass1.par.is_some(), "threaded coded run parallelizes");
            assert!(
                out.pass1.par_fallback.is_none(),
                "no fallback reason on a coded run: {:?}",
                out.pass1.par_fallback
            );
        }
        let key_fnv = fnv1a(
            out.output
                .iter()
                .flat_map(|p| p.records())
                .flat_map(|r| r.key().to_le_bytes()),
        );
        (out.pass1.makespan.as_nanos(), out.total.as_nanos(), key_fnv)
    };
    let t1 = coded_threads(1);
    let t2 = coded_threads(2);
    let t4 = coded_threads(4);
    let threads_ok = t1 == t2 && t2 == t4;
    println!("-- coded r=2 across threads --");
    println!("  t1={t1:?} t2={t2:?} t4={t4:?} identical={threads_ok}");
    json.push_str(&format!(
        "  \"coded_threads\": {{\"pass1_makespan_ns\": {}, \"total_ns\": {}, \"output_key_fnv\": \"{:016x}\", \"verified_threads_identical\": {threads_ok}}},\n",
        t1.0, t1.1, t1.2
    ));

    // Gate 4: r = 1 reproduces the default (uncoded-config) engine
    // bit for bit.
    let sort_with = |dsm: &DsmConfig| {
        let cluster = ClusterConfig::era_2002(2, 4, 8.0);
        let data = generate_rec128(n, KeyDist::Uniform, SEED);
        let out = run_dsm_sort(&cluster, data, dsm, LoadMode::Static).expect("r=1 sort runs");
        let key_fnv = fnv1a(
            out.output
                .iter()
                .flat_map(|p| p.records())
                .flat_map(|r| r.key().to_le_bytes()),
        );
        (
            out.pass1.makespan.as_nanos(),
            out.pass2.makespan.as_nanos(),
            out.total.as_nanos(),
            key_fnv,
        )
    };
    let coded1 = sort_with(&bench_dsm(1));
    let plain = sort_with(&{
        let mut d = DsmConfig::new(8, 256, 4, 64);
        d.input_packet_records = 4096;
        d
    });
    let r1_ok = coded1 == plain;
    println!("-- r=1 vs uncoded engine --");
    println!("  coded1={coded1:?} plain={plain:?} identical={r1_ok}");
    json.push_str(&format!(
        "  \"r1_vs_uncoded\": {{\"pass1_makespan_ns\": {}, \"pass2_makespan_ns\": {}, \"total_ns\": {}, \"output_key_fnv\": \"{:016x}\", \"verified_r1_matches_uncoded\": {r1_ok}}},\n",
        coded1.0, coded1.1, coded1.2, coded1.3
    ));

    json.push_str(&format!(
        "  \"verified_inverse_r_tracking\": {all_tracking},\n  \"verified_planner_agreement\": {all_planner},\n  \"verified_threads_identical\": {threads_ok},\n  \"verified_r1_matches_uncoded\": {r1_ok}\n}}\n"
    ));
    write_results("BENCH_coded.json", &json);

    if strict {
        assert!(all_tracking, "measured shuffle bytes drifted beyond 10% of 1/r");
        assert!(all_planner, "planner-chosen r disagrees with measured-best r");
    }
    assert!(threads_ok, "coded sort not byte-identical across threads");
    assert!(r1_ok, "r=1 diverged from the uncoded engine");
}
