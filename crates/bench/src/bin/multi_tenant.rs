//! **F-MT** — multi-tenant scheduling: job latency under open arrivals,
//! naive static stacking vs interference-aware residual planning.
//!
//! The scheduler turns the emulator into a job-serving system (ISSUE
//! 10): seeded Poisson arrivals from several tenants, per-tenant
//! quotas, and a pluggable dispatch policy. This sweep measures p50 and
//! p99 job latency over an offered-utilization × tenant-count × policy
//! grid, comparing:
//!
//! - **naive** — FCFS dispatch, every job on the static block-subset
//!   layout (concurrent jobs stack their sorters on the same hosts);
//! - **aware** — the swept policy, each job planned against the
//!   residual capacity left by jobs predicted to still be running.
//!
//! Jobs come in two kinds, interactive (n) and batch (4n) in a 3:1
//! mix, so the dispatch policies genuinely differ: SPJF slips short
//! jobs past a queued batch (better p50, worse p99 than FCFS), and
//! weighted-fair sits between them.
//!
//! Checks baked into the artifact:
//! - at every swept cell at ≥ 70% offered utilization, aware beats
//!   naive on **both** p50 and p99 latency;
//! - deep queues admit everything (no rejections cloud percentiles)
//!   and every admitted job completes;
//! - the hottest cell is run twice and must be byte-identical.
//!
//! Output: `results/BENCH_sched.json`.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::Rec8;
use lmas_emulator::ClusterConfig;
use lmas_sched::{run_scheduled, ArrivalSpec, Policy, SchedSpec};
use lmas_sim::SimDuration;
use lmas_sort::{plan_pass1_coded, DsmConfig};
use rayon::prelude::*;

const UTILS: [f64; 3] = [0.5, 0.75, 0.9];
const TENANTS: [usize; 2] = [2, 3];
const POLICIES: [Policy; 3] = [Policy::Fcfs, Policy::Spjf, Policy::WeightedFair];
/// Expected jobs per cell (Poisson; the realized count is seeded).
const TARGET_JOBS: f64 = 12.0;
const SEED: u64 = 0xF17_2026;

struct Cell {
    util: f64,
    tenants: usize,
    policy: &'static str,
    jobs: usize,
    naive_p50: u64,
    naive_p99: u64,
    aware_p50: u64,
    aware_p99: u64,
}

fn main() {
    // Geometry matters: α = 2 on four hosts means the static layout
    // pins every job's sorters onto hosts 0 and 2, leaving 1 and 3
    // permanently idle — exactly the headroom residual planning can
    // place concurrent jobs into. A mild ASU slowdown (c = 2) keeps
    // the movable host-side sort dominant; at c = 8 the pinned ASU
    // distribute/collect stages are the common-mode bottleneck and no
    // placement can separate the two paths.
    let n = scaled_n(2_500, 800);
    let cluster = ClusterConfig::era_2002(4, 4, 2.0);
    let dsm = DsmConfig::new(2, 256, 4, 64);

    // Two job kinds — interactive (n) and batch (4n), 3:1 mix — so the
    // dispatch policies have a real decision to make: with one kind
    // every job predicts the same cost and SPJF's (cost, id) order
    // degenerates to FCFS.
    let kinds = vec![n, 4 * n];
    let mix: [u64; 2] = [3, 1];

    // The mix-weighted mean solo cost is the utilization currency:
    // offered utilization ρ with T tenants of mean inter-arrival M is
    // E[C]·T/M.
    let cost = |records: u64| {
        let (_, solo) =
            plan_pass1_coded::<Rec8>(&cluster, &dsm, records, &[1]).expect("solo plan");
        solo.estimate.makespan_ns
    };
    let cost_ns = (3.0 * cost(n) + cost(4 * n)) / 4.0;

    let spec_for = |util: f64, tenants: usize, policy: Policy, aware: bool| {
        let mean_ns = (cost_ns * tenants as f64 / util) as u64;
        let horizon_ns = (TARGET_JOBS / tenants as f64 * mean_ns as f64) as u64;
        let arrivals = ArrivalSpec::poisson(
            SEED,
            tenants,
            SimDuration::from_nanos(mean_ns.max(1)),
            SimDuration::from_nanos(horizon_ns.max(1)),
            &mix,
        );
        SchedSpec::new(arrivals, kinds.clone())
            .with_policy(policy)
            .with_quota(2)
            .with_queue_cap(64)
            .with_load_limit(1.2)
            .with_aware(aware)
            .with_seed(SEED)
    };

    println!(
        "F-MT: job latency (ms) by offered utilization, naive stack vs aware placement \
         (n={n}/job, H=4, D=4, c=2, α=2)"
    );
    let widths = [6usize, 4, 6, 5, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["util", "T", "policy", "jobs", "nv_p50", "nv_p99", "aw_p50", "aw_p99"]
                .map(String::from),
            &widths
        )
    );

    let grid: Vec<(f64, usize, Policy)> = UTILS
        .iter()
        .flat_map(|&u| {
            TENANTS
                .iter()
                .flat_map(move |&t| POLICIES.iter().map(move |&p| (u, t, p)))
        })
        .collect();

    let cells: Vec<Cell> = grid
        .par_iter()
        .map(|&(util, tenants, policy)| {
            let naive = run_scheduled(&cluster, &dsm, &spec_for(util, tenants, Policy::Fcfs, false))
                .expect("naive run");
            let aware = run_scheduled(&cluster, &dsm, &spec_for(util, tenants, policy, true))
                .expect("aware run");
            for (name, out) in [("naive", &naive), ("aware", &aware)] {
                assert!(
                    out.rejections.is_empty(),
                    "{name} ρ={util} T={tenants}: deep queues must admit everything"
                );
                assert_eq!(
                    out.completed(),
                    out.jobs.len(),
                    "{name} ρ={util} T={tenants}: every admitted job completes"
                );
                assert!(out.jobs.len() >= 4, "cell too sparse to rank latencies");
            }
            let p = |o: &lmas_sched::SchedOutcome, q: f64| {
                o.latency_percentile(q).expect("completed jobs").as_nanos()
            };
            Cell {
                util,
                tenants,
                policy: policy.name(),
                jobs: naive.jobs.len(),
                naive_p50: p(&naive, 0.50),
                naive_p99: p(&naive, 0.99),
                aware_p50: p(&aware, 0.50),
                aware_p99: p(&aware, 0.99),
            }
        })
        .collect();

    // Determinism: the hottest cell, run twice, byte-identical.
    let (u0, t0, p0) = grid[grid.len() - 1];
    let rerun = |aware| {
        run_scheduled(&cluster, &dsm, &spec_for(u0, t0, p0, aware))
            .expect("rerun")
            .to_json()
    };
    assert_eq!(rerun(true), rerun(true), "aware cell replays byte-identically");
    assert_eq!(rerun(false), rerun(false), "naive cell replays byte-identically");

    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut json = String::from("{\n");
    for c in &cells {
        println!(
            "{}",
            row(
                &[
                    format!("{:.2}", c.util),
                    c.tenants.to_string(),
                    c.policy.to_string(),
                    c.jobs.to_string(),
                    ms(c.naive_p50),
                    ms(c.naive_p99),
                    ms(c.aware_p50),
                    ms(c.aware_p99),
                ],
                &widths
            )
        );
        json.push_str(&format!(
            "  \"u{:.2}_t{}_{}\": {{\"util\": {:.2}, \"tenants\": {}, \"policy\": \"{}\", \
             \"jobs\": {}, \"naive_p50_ns\": {}, \"naive_p99_ns\": {}, \
             \"aware_p50_ns\": {}, \"aware_p99_ns\": {}}},\n",
            c.util,
            c.tenants,
            c.policy,
            c.util,
            c.tenants,
            c.policy,
            c.jobs,
            c.naive_p50,
            c.naive_p99,
            c.aware_p50,
            c.aware_p99
        ));
    }

    // The tentpole gate: at ≥ 70% offered utilization, interference-
    // aware placement beats the naive stack on both percentiles, in
    // every swept cell.
    for c in cells.iter().filter(|c| c.util >= 0.7) {
        assert!(
            c.aware_p50 < c.naive_p50,
            "ρ={} T={} {}: aware p50 {} not better than naive {}",
            c.util,
            c.tenants,
            c.policy,
            c.aware_p50,
            c.naive_p50
        );
        assert!(
            c.aware_p99 < c.naive_p99,
            "ρ={} T={} {}: aware p99 {} not better than naive {}",
            c.util,
            c.tenants,
            c.policy,
            c.aware_p99,
            c.naive_p99
        );
    }
    json.push_str("  \"verified_aware_beats_naive_p50_at_70pct\": true,\n");
    json.push_str("  \"verified_aware_beats_naive_p99_at_70pct\": true,\n");
    json.push_str("  \"verified_all_admitted_complete\": true,\n");
    json.push_str("  \"verified_deterministic\": true\n}\n");
    write_results("BENCH_sched.json", &json);
}
