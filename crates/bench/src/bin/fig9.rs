//! **Figure 9** — Speedup of DSM-Sort (first pass, run formation) over a
//! passive-storage baseline, as ASUs are added to one host, per α.
//!
//! Paper setup: 128-byte records, 4-byte keys; one host; ASUs at 1/8 the
//! host clock (c = 8); α ∈ {1, 4, 16, 64, 256} plus an adaptive series;
//! speedup relative to conventional storage with all computation on the
//! host. "This experiment uses one host, which saturates at 16 ASUs."
//!
//! Expected shape: slowdown (< 1) at few ASUs for large α; speedup grows
//! with D and saturates once the host is the bottleneck; at large D,
//! larger α wins; `adaptive` tracks the upper envelope.

use lmas_bench::{row, scaled_n, write_results};
use lmas_core::{generate_rec128, KeyDist, Rec128};
use lmas_emulator::ClusterConfig;
use lmas_sort::{
    adaptive_alpha, choose_splitters, pass1_speedup, split_across_asus, DsmConfig, LoadMode,
    ALPHA_CANDIDATES,
};
use rayon::prelude::*;

const ASU_COUNTS: [usize; 6] = [2, 4, 8, 16, 32, 64];

fn main() {
    let n = scaled_n(1 << 18, 1 << 14);
    let beta = 4096;
    let c = 8.0;
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    println!("Figure 9: DSM-Sort pass-1 speedup vs #ASUs (n={n}, β={beta}, c={c}, H=1)");

    let mut csv = String::from("alpha");
    for d in ASU_COUNTS {
        csv.push_str(&format!(",D{d}"));
    }
    csv.push('\n');

    let widths = [8usize, 7, 7, 7, 7, 7, 7];
    let mut header = vec!["alpha".to_string()];
    header.extend(ASU_COUNTS.iter().map(|d| format!("D={d}")));
    println!("{}", row(&header, &widths));

    let mut speedups: Vec<(u64, Vec<f64>)> = Vec::new();
    for &alpha in &ALPHA_CANDIDATES {
        let splitters = choose_splitters(&data, alpha as usize);
        let dsm = DsmConfig::new(alpha as usize, beta, 8, 4096);
        // Each emulation is single-threaded and independent: sweep the
        // cluster sizes in parallel on the bench host.
        let series: Vec<f64> = ASU_COUNTS
            .par_iter()
            .map(|&d| {
                let cluster = ClusterConfig::era_2002(1, d, c);
                let per_asu = split_across_asus(&data, d);
                let (s, _, _) =
                    pass1_speedup(&cluster, per_asu, splitters.clone(), &dsm, LoadMode::Static)
                        .expect("fig9 run");
                s
            })
            .collect();
        let mut cells = vec![format!("{alpha}")];
        cells.extend(series.iter().map(|s| format!("{s:.3}")));
        println!("{}", row(&cells, &widths));
        csv.push_str(&format!(
            "{alpha},{}\n",
            series.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
        ));
        speedups.push((alpha, series));
    }

    // Adaptive series: the model picks α at each cluster size.
    let mut adaptive = Vec::new();
    let mut picks = Vec::new();
    for (i, &d) in ASU_COUNTS.iter().enumerate() {
        let cluster = ClusterConfig::era_2002(1, d, c);
        let pick = adaptive_alpha::<Rec128>(&cluster, beta);
        picks.push(pick);
        let s = speedups
            .iter()
            .find(|(a, _)| *a == pick)
            .map(|(_, series)| series[i])
            .expect("pick among candidates");
        adaptive.push(s);
    }
    let mut cells = vec!["adaptive".to_string()];
    cells.extend(adaptive.iter().map(|s| format!("{s:.3}")));
    println!("{}", row(&cells, &widths));
    println!(
        "  (adaptive α picks per D: {})",
        picks.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    );
    csv.push_str(&format!(
        "adaptive,{}\n",
        adaptive.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>().join(",")
    ));

    write_results("fig9_speedup.csv", &csv);
}
