//! # lmas-bench — the experiment harness
//!
//! One binary per figure/table of the paper (plus the extension
//! experiments registered in `DESIGN.md` §4):
//!
//! | target | artifact |
//! |--------|----------|
//! | `fig9` | Figure 9 — DSM-Sort pass-1 speedup vs #ASUs per α |
//! | `fig10` | Figure 10 — host utilization under skew ± load management |
//! | `work_table` | T1 — the `n·log(αβγ)` work identity |
//! | `c_sensitivity` | T2 — Figure 9 at c = 4 vs c = 8 |
//! | `gamma_split` | T3 — merge-pass time vs (γ₁, γ₂) split |
//! | `routing_ablation` | T4 — routing policies under skew |
//! | `rtree_layouts` | F5 — partition vs stripe query latency/throughput |
//! | `terraflow_steps` | F-TF — per-step TerraFlow scaling |
//!
//! Each binary prints the paper-style series and writes a CSV next to the
//! workspace root under `results/`.

use std::fs;
use std::path::PathBuf;

/// Directory where experiment CSVs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LMAS_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Write `contents` to `results/<name>` and echo the path.
pub fn write_results(name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("write results file");
    println!("[wrote {}]", path.display());
    path
}

/// Render one aligned table row from cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Wall-clock micro-benchmark support: a median-of-iterations timer and
/// a hand-rolled JSON emitter (the offline workspace carries no external
/// bench harness or serializer). Used by the `benches/` targets, which
/// run as plain `harness = false` mains under `cargo bench`.
pub mod timing {
    use std::time::Instant;

    /// Timed iterations per measurement (`LMAS_BENCH_ITERS`, default 15).
    pub fn iters() -> usize {
        std::env::var("LMAS_BENCH_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(15)
            .max(1)
    }

    /// Median wall-clock nanoseconds of one call to `f`, over
    /// [`iters`] timed iterations after a few warmup calls. The median
    /// (not the mean) keeps one preempted iteration from skewing the
    /// figure.
    pub fn median_ns<T>(mut f: impl FnMut() -> T) -> f64 {
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut samples: Vec<f64> = (0..iters())
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        }
    }

    /// A collected set of named measurements, rendered to JSON.
    #[derive(Default)]
    pub struct BenchReport {
        entries: Vec<(String, f64)>,
    }

    impl BenchReport {
        /// An empty report.
        pub fn new() -> BenchReport {
            BenchReport::default()
        }

        /// Time `f` and record `median / per` (e.g. per-record ns) under
        /// `name`; prints the figure as it lands.
        pub fn bench<T>(&mut self, name: &str, per: u64, f: impl FnMut() -> T) {
            let ns = median_ns(f) / per.max(1) as f64;
            println!("{name:<40} {ns:>12.2} ns/unit");
            self.entries.push((name.to_string(), ns));
        }

        /// Render the flat `{"name": ns, ...}` JSON object.
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            for (i, (name, v)) in self.entries.iter().enumerate() {
                let comma = if i + 1 == self.entries.len() { "" } else { "," };
                // Names are ASCII identifiers chosen by the benches; no
                // escaping beyond quotes is needed.
                out.push_str(&format!("  \"{name}\": {v:.3}{comma}\n"));
            }
            out.push('}');
            out.push('\n');
            out
        }
    }
}

/// Quick scale helper: read `LMAS_SCALE` (float, default 1.0) to shrink
/// or grow experiment sizes without editing code.
pub fn scale() -> f64 {
    std::env::var("LMAS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a record count by `LMAS_SCALE`, keeping at least `min`.
pub fn scaled_n(base: u64, min: u64) -> u64 {
    ((base as f64 * scale()) as u64).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_aligns_right() {
        let r = row(&["a".into(), "42".into()], &[3, 5]);
        assert_eq!(r, "  a     42");
    }

    #[test]
    fn scaled_n_respects_min() {
        assert!(scaled_n(100, 10) >= 10);
    }
}
