//! Criterion microbenchmarks for the simulation kernel: the event
//! calendar and FCFS resources pace every emulated run, so their
//! per-operation cost bounds how large an experiment the harness can
//! afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lmas_sim::{DetRng, EventQueue, Resource, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("schedule_pop_10k", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime(rng.gen_range(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_resource(c: &mut Criterion) {
    let mut g = c.benchmark_group("resource");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("acquire_10k", |b| {
        b.iter(|| {
            let mut r = Resource::new("cpu", SimDuration::from_millis(100));
            let mut t = SimTime::ZERO;
            for _ in 0..n {
                let grant = r.acquire(t, SimDuration::from_micros(3));
                t = grant.end;
            }
            t
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("gen_range_1k", |b| {
        let mut rng = DetRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.gen_range(1_000));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_resource, bench_rng);
criterion_main!(benches);
