//! Wall-clock microbenchmarks for the simulation kernel: the event
//! calendar and FCFS resources pace every emulated run, so their
//! per-operation cost bounds how large an experiment the harness can
//! afford. Runs as a plain main under `cargo bench --bench sim_micro`
//! and writes the per-event figures to `BENCH_sim.json` in the results
//! directory.
//!
//! The scenarios mirror the calendar's hot paths in the emulator:
//! random-time schedule/pop (pass boundaries), interleaved cancels
//! (revised timers), same-instant FIFO cascades (`send_now` chains),
//! full engine dispatch, FCFS grants, and an end-to-end DSM-Sort
//! emulation on the default config.

use lmas_bench::timing::BenchReport;
use lmas_bench::write_results;
use lmas_core::{generate_rec128, KeyDist};
use lmas_emulator::ClusterConfig;
use lmas_sim::{
    Ctx, DetRng, EventQueue, MultiResource, Resource, SimDuration, SimTime, Simulation,
};
use lmas_sort::{run_dsm_sort, DsmConfig, LoadMode};

fn main() {
    let mut report = BenchReport::new();
    let n = 1 << 16;

    report.bench("calendar/schedule_pop_random_64k", n, || {
        let mut rng = DetRng::new(1);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime(rng.gen_range(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    report.bench("calendar/schedule_cancel_64k", n, || {
        let mut rng = DetRng::new(2);
        let mut q = EventQueue::new();
        let mut tokens = Vec::with_capacity(n as usize);
        for i in 0..n {
            tokens.push(q.schedule(SimTime(rng.gen_range(1_000_000)), i));
        }
        // Cancel every other event (the blocked-timer-revision idiom).
        for tok in tokens.iter().step_by(2) {
            q.cancel(*tok);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    report.bench("calendar/same_instant_fifo_64k", n, || {
        // A send_now cascade: every pop schedules a successor at the very
        // instant just popped, so the whole run plays out at t=42.
        let mut q = EventQueue::new();
        q.schedule(SimTime(42), 0u64);
        let mut acc = 0u64;
        let mut left = n - 1;
        while let Some((t, v)) = q.pop() {
            acc = acc.wrapping_add(v);
            if left > 0 {
                left -= 1;
                q.schedule(t, v + 1);
            }
        }
        acc
    });

    report.bench("engine/send_now_cascade_64k", n, || {
        let mut sim: Simulation<u64> = Simulation::new(0);
        let a = sim.add_actor(Box::new(|ctx: &mut Ctx<'_, u64>, left: u64| {
            if left > 0 {
                let me = ctx.me();
                ctx.send_now(me, left - 1);
            }
        }));
        sim.seed_message(a, SimTime::ZERO, n - 1);
        sim.run();
        sim.dispatched()
    });

    report.bench("resource/acquire_100k", 100_000, || {
        let mut r = Resource::new("cpu", SimDuration::from_millis(100));
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            let grant = r.acquire(t, SimDuration::from_micros(3));
            t = grant.end;
        }
        t
    });

    report.bench("multi_resource/acquire_8x100k", 100_000, || {
        let mut m = MultiResource::new("raid", 8, SimDuration::from_millis(100));
        let mut t = SimTime::ZERO;
        for _ in 0..100_000 {
            let grant = m.acquire(t, SimDuration::from_micros(3));
            t = grant.start;
        }
        t
    });

    let mut rng = DetRng::new(7);
    report.bench("rng/gen_range_1k", 1_000, || {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc = acc.wrapping_add(rng.gen_range(1_000));
        }
        acc
    });

    // End-to-end: the default DSM-Sort emulation. ns/unit here is ns per
    // dispatched simulator event, the paper-harness figure of merit.
    let sort_n = 30_000u64;
    let cluster = ClusterConfig::era_2002(1, 4, 8.0);
    let dsm = DsmConfig::new(16, 256, 4, 64);
    let data = generate_rec128(sort_n, KeyDist::Uniform, 1);
    let probe = run_dsm_sort(&cluster, data.clone(), &dsm, LoadMode::Static)
        .expect("default DSM-Sort runs");
    let events = probe.pass1.dispatched + probe.pass2.dispatched;
    println!(
        "emulation/dsm_sort_default: {events} events, makespan {}",
        probe.total
    );
    report.bench("emulation/dsm_sort_default_per_event", events, || {
        run_dsm_sort(&cluster, data.clone(), &dsm, LoadMode::Static).expect("sort runs")
    });

    write_results("BENCH_sim.json", &report.to_json());
}
