//! Wall-clock microbenchmarks for the simulation kernel: the event
//! calendar and FCFS resources pace every emulated run, so their
//! per-operation cost bounds how large an experiment the harness can
//! afford. Runs as a plain main under `cargo bench --bench sim_micro`.

use lmas_bench::timing::BenchReport;
use lmas_sim::{DetRng, EventQueue, Resource, SimDuration, SimTime};

fn main() {
    let mut report = BenchReport::new();
    let n = 10_000u64;

    report.bench("event_queue/schedule_pop_10k", n, || {
        let mut rng = DetRng::new(1);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime(rng.gen_range(1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    report.bench("resource/acquire_10k", n, || {
        let mut r = Resource::new("cpu", SimDuration::from_millis(100));
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            let grant = r.acquire(t, SimDuration::from_micros(3));
            t = grant.end;
        }
        t
    });

    let mut rng = DetRng::new(7);
    report.bench("rng/gen_range_1k", 1_000, || {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc = acc.wrapping_add(rng.gen_range(1_000));
        }
        acc
    });
}
