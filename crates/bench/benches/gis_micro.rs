//! Criterion microbenchmarks for the GIS substrates: R-tree construction
//! and search, the external priority queue, and watershed labeling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lmas_gis::{fractal_terrain, random_points, ExternalPq, RTree, Rect, WatershedLabeler};

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    let points = random_points(50_000, 1);
    g.bench_function("bulk_load_50k", |b| {
        b.iter(|| RTree::bulk_load(points.clone(), 32))
    });
    let tree = RTree::bulk_load(points, 32);
    for &side in &[0.01f32, 0.1, 0.5] {
        g.bench_with_input(BenchmarkId::new("query_side", format!("{side}")), &side, |b, &side| {
            let rect = Rect::new(0.3, 0.3, 0.3 + side, 0.3 + side);
            b.iter(|| tree.query(&rect))
        });
    }
    g.finish();
}

fn bench_pqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("external_pq");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k_spilling", |b| {
        let mut rng = lmas_sim::DetRng::new(3);
        b.iter(|| {
            let mut pq = ExternalPq::new(256);
            for _ in 0..n {
                pq.push(rng.gen_range(1 << 20), 0u32);
            }
            let mut acc = 0u64;
            while let Some((k, _)) = pq.pop_min() {
                acc = acc.wrapping_add(k);
            }
            acc
        })
    });
    g.finish();
}

fn bench_watershed(c: &mut Criterion) {
    let mut g = c.benchmark_group("watershed");
    let grid = fractal_terrain(129, 129, 0.55, 5);
    let mut cells = lmas_gis::restructure(&grid);
    cells.sort_by_key(|cell| lmas_core::Record::key(cell));
    g.throughput(Throughput::Elements(cells.len() as u64));
    g.bench_function("label_129x129", |b| {
        b.iter(|| {
            let mut labeler = WatershedLabeler::default();
            for &cell in &cells {
                labeler.label(cell);
            }
            labeler.colors()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rtree, bench_pqueue, bench_watershed);
criterion_main!(benches);
