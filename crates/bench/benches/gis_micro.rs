//! Wall-clock microbenchmarks for the GIS substrates: R-tree
//! construction and search, the external priority queue, and watershed
//! labeling. Runs as a plain main under `cargo bench --bench gis_micro`.

use lmas_bench::timing::BenchReport;
use lmas_gis::{fractal_terrain, random_points, ExternalPq, RTree, Rect, WatershedLabeler};

fn main() {
    let mut report = BenchReport::new();

    let points = random_points(50_000, 1);
    report.bench("rtree/bulk_load_50k", 50_000, || {
        RTree::bulk_load(points.clone(), 32)
    });
    let tree = RTree::bulk_load(points, 32);
    for &side in &[0.01f32, 0.1, 0.5] {
        let rect = Rect::new(0.3, 0.3, 0.3 + side, 0.3 + side);
        report.bench(&format!("rtree/query_side={side}"), 1, || tree.query(&rect));
    }

    let n = 10_000u64;
    let mut rng = lmas_sim::DetRng::new(3);
    report.bench("external_pq/push_pop_10k_spilling", n, || {
        let mut pq = ExternalPq::new(256);
        for _ in 0..n {
            pq.push(rng.gen_range(1 << 20), 0u32);
        }
        let mut acc = 0u64;
        while let Some((k, _)) = pq.pop_min() {
            acc = acc.wrapping_add(k);
        }
        acc
    });

    let grid = fractal_terrain(129, 129, 0.55, 5);
    let mut cells = lmas_gis::restructure(&grid);
    cells.sort_by_key(lmas_core::Record::key);
    report.bench("watershed/label_129x129", cells.len() as u64, || {
        let mut labeler = WatershedLabeler::default();
        for &cell in &cells {
            labeler.label(cell);
        }
        labeler.colors()
    });
}
