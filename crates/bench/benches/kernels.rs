//! Wall-clock microbenchmarks for the verified sort/merge kernels that
//! every DSM-Sort pass leans on, plus the packet fan-out path.
//!
//! Runs as a plain main under `cargo bench --bench kernels`; writes the
//! per-record figures to `BENCH_kernels.json` in the results directory
//! (`LMAS_RESULTS_DIR`, default `results/`). These are the numbers the
//! zero-copy packet and radix/loser-tree kernel work is judged by —
//! virtual-time results are unchanged by construction, so wall clock is
//! the whole story.

use lmas_bench::timing::BenchReport;
use lmas_bench::write_results;
use lmas_core::kernels::{block_sort, bucket_of, merge_runs, radix_sort_u32, select_splitters};
use lmas_core::{generate_rec128, generate_rec8, KeyDist, Packet, Rec8};

fn main() {
    let mut report = BenchReport::new();

    // Block sort (dispatches to radix for these records) vs the raw
    // kernels, on the 8-byte test record and the paper's 128-byte record.
    for &n in &[1usize << 10, 1 << 13, 1 << 16] {
        let data = generate_rec8(n as u64, KeyDist::Uniform, 1);
        report.bench(&format!("block_sort_rec8/n={n}"), n as u64, || {
            let mut v = data.clone();
            block_sort(&mut v)
        });
    }
    for &n in &[1usize << 13, 1 << 16] {
        let data = generate_rec128(n as u64, KeyDist::Uniform, 1);
        report.bench(&format!("radix_sort_rec128/n={n}"), n as u64, || {
            let mut v = data.clone();
            radix_sort_u32(&mut v);
            v.len()
        });
        report.bench(&format!("comparison_sort_rec128/n={n}"), n as u64, || {
            let mut v = data.clone();
            v.sort_by_key(lmas_core::Record::key);
            v.len()
        });
    }

    // Loser-tree merge across fan-ins.
    for &k in &[2usize, 8, 64] {
        let n = 1usize << 14;
        let data = generate_rec8(n as u64, KeyDist::Uniform, 2);
        let mut runs: Vec<Vec<Rec8>> = data.chunks(n / k).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        report.bench(&format!("merge_runs/k={k}"), n as u64, || {
            merge_runs(runs.clone())
        });
    }

    // Packet fan-out: cloning a packet to many destinations is a
    // refcount bump per destination, not a record copy — the per-record
    // figure should be orders of magnitude below the sort kernels.
    let big = Packet::new(generate_rec128(1 << 16, KeyDist::Uniform, 3));
    let fanout = 64u64;
    report.bench(
        &format!("packet_fanout/records={},clones={fanout}", 1 << 16),
        (1u64 << 16) * fanout,
        || {
            let clones: Vec<Packet<_>> = (0..fanout).map(|_| big.clone()).collect();
            clones.len()
        },
    );

    // Splitter machinery (unchanged by this round, kept for trend lines).
    let sample = generate_rec8(1 << 14, KeyDist::Uniform, 3);
    report.bench("select_splitters_256", 1 << 14, || {
        select_splitters(sample.clone(), 256)
    });
    let splitters = select_splitters(sample.clone(), 256);
    let keys: Vec<u32> = sample.iter().map(|r| r.key).collect();
    report.bench("bucket_of_256", 1 << 14, || {
        let mut acc = 0usize;
        for &k in &keys {
            acc = acc.wrapping_add(bucket_of(k, &splitters));
        }
        acc
    });

    write_results("BENCH_kernels.json", &report.to_json());
}
