//! Criterion microbenchmarks for the verified sort/merge kernels that
//! every DSM-Sort pass leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lmas_core::kernels::{block_sort, bucket_of, merge_runs, select_splitters};
use lmas_core::{generate_rec8, KeyDist, Rec8};

fn bench_block_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_sort");
    for &n in &[1usize << 10, 1 << 13, 1 << 16] {
        let data = generate_rec8(n as u64, KeyDist::Uniform, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut v = data.clone();
                block_sort(&mut v)
            })
        });
    }
    g.finish();
}

fn bench_merge_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_runs");
    for &k in &[2usize, 8, 64] {
        let n = 1usize << 14;
        let data = generate_rec8(n as u64, KeyDist::Uniform, 2);
        let mut runs: Vec<Vec<Rec8>> = data.chunks(n / k).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("fanin", k), &runs, |b, runs| {
            b.iter(|| merge_runs(runs.clone()))
        });
    }
    g.finish();
}

fn bench_splitters(c: &mut Criterion) {
    let sample = generate_rec8(1 << 14, KeyDist::Uniform, 3);
    c.bench_function("select_splitters_256", |b| {
        b.iter(|| select_splitters(sample.clone(), 256))
    });
    let splitters = select_splitters(sample.clone(), 256);
    let keys: Vec<u32> = sample.iter().map(|r| r.key).collect();
    c.bench_function("bucket_of_256", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc = acc.wrapping_add(bucket_of(k, &splitters));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_block_sort, bench_merge_runs, bench_splitters);
criterion_main!(benches);
