//! # lmas — load-managed active storage (facade crate)
//!
//! Re-exports the whole LMAS workspace behind one dependency. See the
//! repository `README.md` for a tour and `DESIGN.md` for the architecture.

pub use lmas_core as core;
pub use lmas_emulator as emulator;
pub use lmas_gis as gis;
pub use lmas_sim as sim;
pub use lmas_sort as sort;
pub use lmas_storage as storage;
