//! Property-based tests over the core invariants of the stack.

use lmas::core::kernels::{
    bucket_of, is_sorted_by_key, merge_runs, radix_sort_u32, select_splitters,
};
use lmas::core::{packetize, Packet, Rec128, Rec8, Record};
use lmas::emulator::ClusterConfig;
use lmas::sort::{
    check_tag_permutation, reconstruct_sorted, run_dsm_sort, DsmConfig, LoadMode,
};
use proptest::prelude::*;

fn rec8s(max_len: usize) -> impl Strategy<Value = Vec<Rec8>> {
    prop::collection::vec(any::<u32>(), 0..max_len).prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, key)| Rec8 { key, tag: i as u32 })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge_runs equals a plain sort of the concatenation.
    #[test]
    fn merge_runs_equals_sort(data in rec8s(500), k in 1usize..8) {
        let mut runs: Vec<Vec<Rec8>> = data
            .chunks(data.len().max(1).div_ceil(k))
            .map(|c| c.to_vec())
            .collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        let (merged, _) = merge_runs(runs);
        let mut expect = data.clone();
        expect.sort_by_key(|x| x.key);
        prop_assert_eq!(
            merged.iter().map(|r| r.key).collect::<Vec<_>>(),
            expect.iter().map(|r| r.key).collect::<Vec<_>>()
        );
        // And nothing was lost: tags are the same multiset.
        let mut mt: Vec<u32> = merged.iter().map(|r| r.tag).collect();
        let mut et: Vec<u32> = expect.iter().map(|r| r.tag).collect();
        mt.sort_unstable();
        et.sort_unstable();
        prop_assert_eq!(mt, et);
    }

    /// Splitters always partition the key space consistently: bucket ids
    /// are monotone in the key.
    #[test]
    fn bucket_of_is_monotone(sample in rec8s(300), k in 1usize..32, probes in prop::collection::vec(any::<u32>(), 0..50)) {
        let splitters = select_splitters(sample, k);
        prop_assert!(splitters.len() < k.max(1));
        let mut sorted_probes = probes;
        sorted_probes.sort_unstable();
        let buckets: Vec<usize> = sorted_probes.iter().map(|&p| bucket_of(p, &splitters)).collect();
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(buckets.iter().all(|&b| b < k.max(1)));
    }

    /// packetize never loses, duplicates, or reorders records.
    #[test]
    fn packetize_partitions_exactly(data in rec8s(400), sz in 1usize..64) {
        let packets = packetize(data.clone(), sz);
        let flat: Vec<Rec8> = packets.iter().flat_map(|p| p.records().iter().copied()).collect();
        prop_assert_eq!(flat, data.clone());
        for (i, p) in packets.iter().enumerate() {
            if i + 1 < packets.len() {
                prop_assert_eq!(p.len(), sz);
            } else {
                prop_assert!(p.len() <= sz && !p.is_empty());
            }
        }
    }

    /// Reconstructing stripes of any sorted sequence recovers it.
    #[test]
    fn reconstruct_recovers_striped_sorted_sequence(
        data in rec8s(400),
        stripe in 1usize..50,
        nsinks in 1usize..6,
    ) {
        let mut sorted = data;
        sorted.sort_by_key(|r| r.key);
        // Stripe round-robin across sinks, as the collectors do.
        let mut sinks: Vec<Vec<Packet<Rec8>>> = vec![Vec::new(); nsinks];
        for (i, chunk) in sorted.chunks(stripe).enumerate() {
            sinks[i % nsinks].push(Packet::new(chunk.to_vec()));
        }
        let stripes: Vec<Packet<Rec8>> = sinks.into_iter().flatten().collect();
        let back = reconstruct_sorted(&stripes).expect("reconstructs");
        prop_assert_eq!(
            back.iter().map(|r| r.key).collect::<Vec<_>>(),
            sorted.iter().map(|r| r.key).collect::<Vec<_>>()
        );
    }

    /// Tag-permutation checking accepts permutations and rejects losses.
    #[test]
    fn permutation_check_sound(n in 1u64..200, drop_one in any::<bool>()) {
        let mut tags: Vec<u64> = (0..n).collect();
        tags.reverse();
        if drop_one {
            tags.pop();
            prop_assert!(check_tag_permutation(tags, n).is_err());
        } else {
            prop_assert!(check_tag_permutation(tags, n).is_ok());
        }
    }

    /// The radix kernel equals a stable comparison sort for arbitrary
    /// Rec128 inputs (narrow mode forces duplicate keys so stability —
    /// equal keys keep input order — is actually exercised).
    #[test]
    fn radix_equals_stable_sort(keys in prop::collection::vec(any::<u32>(), 0..400), narrow in any::<bool>()) {
        let recs: Vec<Rec128> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Rec128::new(if narrow { k % 13 } else { k }, i as u64))
            .collect();
        let mut a = recs.clone();
        radix_sort_u32(&mut a);
        let mut b = recs;
        b.sort_by_key(|r| r.key());
        prop_assert_eq!(
            a.iter().map(|r| (r.key(), r.tag())).collect::<Vec<_>>(),
            b.iter().map(|r| (r.key(), r.tag())).collect::<Vec<_>>()
        );
    }

    /// Packet clones share one buffer (a clone never splits or copies
    /// the records), and copy-on-write mutation equals the deep-copy
    /// semantics it replaced, leaving every other clone untouched.
    #[test]
    fn packet_clone_shares_and_cow_matches(data in rec8s(200)) {
        let p = Packet::new(data.clone());
        let q = p.clone();
        prop_assert!(p.shares_buffer(&q));
        prop_assert_eq!(p.len(), q.len());
        prop_assert_eq!(p.records(), q.records());
        // Mutate a clone: same result as mutating an independent copy.
        let mut cow = q.clone();
        cow.records_mut().sort_by_key(|r| r.key);
        let mut deep = data.clone();
        deep.sort_by_key(|r| r.key);
        prop_assert_eq!(cow.records(), &deep[..]);
        // The original pair still shares its (unchanged) buffer.
        prop_assert_eq!(p.records(), &data[..]);
        prop_assert!(p.shares_buffer(&q));
        prop_assert!(!cow.shares_buffer(&p), "write must detach the writer only");
    }

    /// Record serialization round-trips.
    #[test]
    fn rec8_bytes_roundtrip(key in any::<u32>(), tag in any::<u32>()) {
        let r = Rec8 { key, tag };
        let mut buf = [0u8; 8];
        r.to_bytes(&mut buf);
        prop_assert_eq!(Rec8::from_bytes(&buf), r);
    }
}

proptest! {
    // Emulated runs are costly; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full DSM-Sort emulation sorts any input under any valid
    /// geometry and both load modes.
    #[test]
    fn dsm_sort_always_sorts(
        n in 500u64..4000,
        alpha_pow in 0u32..4,
        hosts in 1usize..3,
        asus_pow in 0u32..3,
        managed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let alpha = 1usize << alpha_pow;
        let asus = 2usize << asus_pow;
        let cluster = ClusterConfig::era_2002(hosts, asus, 8.0);
        let dsm = DsmConfig::new(alpha, 128, 4, 512);
        let data = lmas::core::generate_rec128(n, lmas::core::KeyDist::Uniform, seed);
        let mode = if managed { LoadMode::managed_sr() } else { LoadMode::Static };
        let out = run_dsm_sort(&cluster, data, &dsm, mode).expect("sort runs");
        let sorted = reconstruct_sorted(&out.output).expect("sorted");
        prop_assert_eq!(sorted.len() as u64, n);
        prop_assert!(is_sorted_by_key(&sorted));
        check_tag_permutation(sorted.iter().map(|r| r.tag()), n).expect("permutation");
    }

    /// The external PQ behaves like a heap for any operation sequence.
    #[test]
    fn external_pq_matches_heap(ops in prop::collection::vec((any::<bool>(), 0u64..1000), 1..300), cap in 1usize..32) {
        use std::collections::BinaryHeap;
        use std::cmp::Reverse;
        let mut pq = lmas::gis::ExternalPq::new(cap);
        let mut heap = BinaryHeap::new();
        for (push, key) in ops {
            if push || heap.is_empty() {
                pq.push(key, ());
                heap.push(Reverse(key));
            } else {
                prop_assert_eq!(pq.pop_min().map(|(k, _)| k), heap.pop().map(|r| r.0));
            }
        }
        prop_assert_eq!(pq.len(), heap.len());
    }

    /// R-tree queries equal linear scans for arbitrary points/queries.
    #[test]
    fn rtree_equals_linear_scan(
        coords in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 0..300),
        q in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
        fanout in 2usize..20,
    ) {
        use lmas::gis::{linear_scan, PointRec, RTree, Rect};
        let points: Vec<PointRec> = coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| PointRec { id: i as u64, x, y })
            .collect();
        let tree = RTree::bulk_load(points.clone(), fanout);
        let rect = Rect::new(q.0, q.1, q.2, q.3);
        let mut got = tree.query(&rect).ids;
        let mut want = linear_scan(&points, &rect);
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
