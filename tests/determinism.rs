//! Fixed-seed determinism: an emulated run is a pure function of its
//! configuration and seed. The zero-copy packet pipeline, the radix /
//! loser-tree kernels, and the parallel sweep harness may only change
//! wall-clock time — virtual-time results must be bit-identical from run
//! to run.

use lmas::core::{generate_rec128, KeyDist, Record};
use lmas::emulator::ClusterConfig;
use lmas::sort::{reconstruct_sorted, run_dsm_sort, DsmConfig, DsmOutcome, LoadMode};

fn fig9_shaped_run(seed: u64) -> DsmOutcome<lmas::core::Rec128> {
    // Figure-9 geometry at small scale: 2 hosts, 8 ASUs at c = 8,
    // α-way distribute with managed (randomized) routing, so the run
    // exercises the routing RNG, both sort passes, and the NIC paths.
    let cluster = ClusterConfig::era_2002(2, 8, 8.0);
    let dsm = DsmConfig::new(8, 256, 8, 1024);
    let data = generate_rec128(20_000, KeyDist::Uniform, seed);
    run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort runs")
}

#[test]
fn same_seed_reproduces_makespan_and_output() {
    let a = fig9_shaped_run(42);
    let b = fig9_shaped_run(42);
    assert_eq!(a.total, b.total, "makespan must be bit-identical");
    assert_eq!(
        a.pass1.makespan, b.pass1.makespan,
        "pass-1 makespan must be bit-identical"
    );
    assert_eq!(
        a.pass2.makespan, b.pass2.makespan,
        "pass-2 makespan must be bit-identical"
    );
    let sa = reconstruct_sorted(&a.output).expect("sorted");
    let sb = reconstruct_sorted(&b.output).expect("sorted");
    assert_eq!(sa.len(), sb.len());
    assert!(
        sa.iter()
            .zip(&sb)
            .all(|(x, y)| x.key() == y.key() && x.tag() == y.tag()),
        "output records must be identical"
    );
}

#[test]
fn different_seed_changes_the_data_not_the_contract() {
    let a = fig9_shaped_run(1);
    let b = fig9_shaped_run(2);
    // Both runs sort correctly; the inputs (and hence traces) differ.
    let sa = reconstruct_sorted(&a.output).expect("sorted");
    let sb = reconstruct_sorted(&b.output).expect("sorted");
    assert_eq!(sa.len(), sb.len());
    assert!(
        sa.iter().zip(&sb).any(|(x, y)| x.key() != y.key()),
        "different seeds should generate different keys"
    );
}
