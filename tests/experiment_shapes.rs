//! Shape tests: small-scale versions of the paper's experiments whose
//! qualitative outcomes (who wins, where crossovers fall) must hold on
//! every build. These guard the reproduction itself, not just the code.

use lmas::core::{generate_rec128, KeyDist};
use lmas::emulator::ClusterConfig;
use lmas::sort::skew::{fig10_data_per_asu, uniform_assuming_splitters};
use lmas::sort::{
    choose_splitters, pass1_speedup, run_pass1, split_across_asus, DsmConfig, LoadMode,
};

fn speedup(d: usize, alpha: usize, n: u64) -> f64 {
    let cluster = ClusterConfig::era_2002(1, d, 8.0);
    let data = generate_rec128(n, KeyDist::Uniform, 1);
    let splitters = choose_splitters(&data, alpha);
    let dsm = DsmConfig::new(alpha, 4096, 8, 4096);
    let per_asu = split_across_asus(&data, d);
    let (s, _, _) =
        pass1_speedup(&cluster, per_asu, splitters, &dsm, LoadMode::Static).expect("run");
    s
}

/// Figure 9, left edge: with few ASUs, shifting work to them *hurts* —
/// higher α values "increase the load on the bottlenecked ASUs,
/// resulting in a slowdown relative to a conventional system".
#[test]
fn fig9_shape_large_alpha_slows_down_with_few_asus() {
    let n = 1 << 15;
    let s = speedup(2, 256, n);
    assert!(s < 0.8, "α=256 at D=2 should slow down, got {s:.3}");
}

/// Figure 9, right edge: with many ASUs, higher α wins, and α=1 hovers
/// near 1.0.
#[test]
fn fig9_shape_large_alpha_wins_with_many_asus() {
    let n = 1 << 15;
    let s256 = speedup(32, 256, n);
    let s1 = speedup(32, 1, n);
    assert!(s256 > 1.15, "α=256 at D=32 should speed up, got {s256:.3}");
    assert!(s256 > s1, "bigger α must win at D=32 ({s256:.3} vs {s1:.3})");
    assert!((0.85..1.15).contains(&s1), "α=1 stays near 1.0, got {s1:.3}");
}

/// Figure 9, saturation: "This experiment uses one host, which saturates
/// at 16 ASUs" — adding ASUs beyond saturation stops helping.
#[test]
fn fig9_shape_host_saturates() {
    let n = 1 << 15;
    let s16 = speedup(16, 64, n);
    let s64 = speedup(64, 64, n);
    assert!(
        s64 <= s16 * 1.25,
        "post-saturation gains should be marginal: D=16 {s16:.3} → D=64 {s64:.3}"
    );
}

/// Figure 9, monotone rise before saturation.
#[test]
fn fig9_shape_speedup_rises_with_asus() {
    let n = 1 << 15;
    let s2 = speedup(2, 64, n);
    let s8 = speedup(8, 64, n);
    let s32 = speedup(32, 64, n);
    assert!(s2 < s8 && s8 < s32, "rise: {s2:.3} < {s8:.3} < {s32:.3}");
}

/// Figure 10: under skew, load management equalizes host utilization and
/// finishes earlier.
#[test]
fn fig10_shape_load_management_balances_and_wins() {
    let n = 1 << 17;
    let d = 16;
    let cluster = ClusterConfig::era_2002(2, d, 8.0);
    let dsm = DsmConfig::new(16, 4096, 8, 4096);
    let splitters = uniform_assuming_splitters(16);

    let run = |mode| {
        let data = fig10_data_per_asu(n, d, 42);
        let r = run_pass1(&cluster, data, splitters.clone(), &dsm, mode).expect("run");
        let m0 = r.report.nodes[0].mean_cpu_util;
        let m1 = r.report.nodes[1].mean_cpu_util;
        (r.report.makespan, (m0 - m1).abs())
    };
    let (t_static, gap_static) = run(LoadMode::Static);
    let (t_managed, gap_managed) = run(LoadMode::managed_sr());
    assert!(
        t_managed < t_static,
        "load-managed must terminate earlier: {t_managed} vs {t_static}"
    );
    assert!(
        gap_managed < gap_static / 3.0,
        "SR must equalize the hosts: gap {gap_managed:.3} vs static {gap_static:.3}"
    );
    assert!(gap_static > 0.2, "static run must actually be imbalanced");
}

/// TerraFlow: steps 1–2 parallelize over ASUs, step 3 does not.
#[test]
fn terraflow_shape_amdahl() {
    use lmas::gis::{fractal_terrain, run_terraflow};
    let grid = fractal_terrain(49, 49, 0.55, 6);
    let mut dsm = DsmConfig::new(4, 256, 4, 256);
    dsm.input_packet_records = 256;
    let run = |d: usize| {
        let cluster = ClusterConfig::era_2002(1, d, 8.0);
        run_terraflow(&cluster, &grid, &dsm, LoadMode::Static)
            .expect("terraflow")
            .times
    };
    let (a1, _, a3) = run(2);
    let (b1, _, b3) = run(8);
    assert!(
        b1.as_secs_f64() < a1.as_secs_f64() * 0.6,
        "step 1 scales: {a1} → {b1}"
    );
    let ratio = b3.as_secs_f64() / a3.as_secs_f64();
    assert!((0.9..1.1).contains(&ratio), "step 3 flat: {a3} → {b3}");
}

/// R-trees: stripe bounds single-query latency; partition carries more
/// concurrent throughput.
#[test]
fn rtree_shape_latency_throughput_trade() {
    use lmas::gis::{random_points, run_queries, DistRTree, Layout, Rect};
    let d = 8;
    let cluster = ClusterConfig::era_2002(1, d, 8.0);
    let points = random_points(40_000, 11);
    let one = vec![Rect::new(0.4, 0.0, 0.6, 1.0)];
    let flood: Vec<Rect> = (0..64)
        .map(|i| {
            let x = (i % 8) as f32 / 8.0;
            let y = (i / 8) as f32 / 8.0;
            Rect::new(x, y, x + 0.12, y + 0.12)
        })
        .collect();

    let part = DistRTree::build(points.clone(), d, 16, Layout::Partition);
    let stripe = DistRTree::build(points, d, 16, Layout::Stripe);

    let lat_part = run_queries(&cluster, &part, &one, 1).unwrap().report.makespan;
    let lat_stripe = run_queries(&cluster, &stripe, &one, 1).unwrap().report.makespan;
    assert!(
        lat_stripe < lat_part,
        "stripe bounds latency: {lat_stripe} vs {lat_part}"
    );

    let thr_part = run_queries(&cluster, &part, &flood, 4).unwrap().report.makespan;
    let thr_stripe = run_queries(&cluster, &stripe, &flood, 4).unwrap().report.makespan;
    assert!(
        thr_part < thr_stripe,
        "partition wins concurrent throughput: {thr_part} vs {thr_stripe}"
    );
}
