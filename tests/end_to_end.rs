//! Cross-crate integration tests through the `lmas` facade: every layer
//! from the DES kernel to the GIS applications, exercised together.

use lmas::core::{generate_rec128, generate_rec8, KeyDist, Rec128, Record};
use lmas::emulator::ClusterConfig;
use lmas::gis::{fractal_terrain, matches_oracle, run_terraflow};
use lmas::sort::{
    adaptive_config, run_dsm_sort, verify_rec128_output, DsmConfig, LoadMode,
};

#[test]
fn facade_reexports_compose() {
    // Types from different crates interoperate through the facade.
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let model = cluster.pipeline_model(Rec128::SIZE);
    let alpha = model.pick_alpha(&[1, 4, 16], 1 << 12);
    assert!([1u64, 4, 16].contains(&alpha));
    let _ = generate_rec8(10, KeyDist::Uniform, 1);
}

#[test]
fn dsm_sort_small_cluster_full_stack() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let n = 30_000u64;
    let dsm = DsmConfig::new(8, 512, 4, 128);
    let data = generate_rec128(n, KeyDist::Uniform, 21);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort");
    let sorted = verify_rec128_output(&out.output, n).expect("sorted permutation");
    assert_eq!(sorted.len() as u64, n);
    // Both passes consumed emulated time and processed every record.
    assert!(out.pass1.makespan.as_nanos() > 0);
    assert!(out.pass2.makespan.as_nanos() > 0);
    assert_eq!(out.pass1.stage_records_in[0], n);
}

#[test]
fn dsm_sort_with_exponential_skew_and_adaptive_config() {
    let cluster = ClusterConfig::era_2002(1, 8, 4.0);
    let n = 25_000u64;
    let dsm = adaptive_config::<Rec128>(&cluster, n, 1024, 8);
    let data = generate_rec128(n, KeyDist::Exponential { rate: 8.0 }, 33);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort");
    verify_rec128_output(&out.output, n).expect("sorted permutation");
}

#[test]
fn terraflow_full_pipeline_matches_oracle() {
    let cluster = ClusterConfig::era_2002(1, 4, 8.0);
    let grid = fractal_terrain(49, 49, 0.6, 17);
    let mut dsm = DsmConfig::new(4, 512, 4, 256);
    dsm.input_packet_records = 256;
    let out = run_terraflow(&cluster, &grid, &dsm, LoadMode::Static).expect("terraflow");
    assert!(matches_oracle(&grid, &out));
    assert!(out.watersheds > 0);
}

#[test]
fn rtree_layouts_agree_with_each_other_and_the_scan() {
    use lmas::gis::{linear_scan, random_points, run_queries, DistRTree, Layout, Rect};
    let cluster = ClusterConfig::era_2002(1, 4, 8.0);
    let points = random_points(5_000, 3);
    let queries = vec![
        Rect::new(0.0, 0.0, 0.5, 0.5),
        Rect::new(0.25, 0.25, 0.75, 0.75),
        Rect::new(0.9, 0.9, 1.0, 1.0),
    ];
    let mut answers = Vec::new();
    for layout in [Layout::Partition, Layout::Stripe] {
        let index = DistRTree::build(points.clone(), 4, 16, layout);
        let run = run_queries(&cluster, &index, &queries, 2).expect("queries");
        answers.push(run.counts);
    }
    assert_eq!(answers[0], answers[1], "layouts must agree");
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            answers[0][&(i as u32)],
            linear_scan(&points, q).len() as u64
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    // The entire stack — RNG, routing, emulation, sort — is reproducible.
    let run = || {
        let cluster = ClusterConfig::era_2002(2, 4, 8.0);
        let data = generate_rec128(10_000, KeyDist::Uniform, 5);
        let dsm = DsmConfig::new(4, 256, 4, 128);
        let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort");
        (
            out.pass1.makespan,
            out.pass2.makespan,
            out.pass1.nodes[0].cpu_busy,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn storage_stack_roundtrips_records_through_files() {
    // The file BTE + record codec path (real I/O, no emulation).
    use lmas::storage::{BlockTransferEngine, FileBte, RecordCodec};
    let mut path = std::env::temp_dir();
    path.push(format!("lmas-e2e-{}.bte", std::process::id()));
    let codec = RecordCodec::new(Rec128::SIZE, 4096);
    let mut bte = FileBte::create(&path, 4096).expect("create");
    let records = generate_rec128(100, KeyDist::Uniform, 9);

    let extent = bte.allocate(codec.blocks_for(100));
    let mut payload = Vec::new();
    for r in &records {
        let mut buf = [0u8; 128];
        r.to_bytes(&mut buf);
        payload.extend_from_slice(&buf);
    }
    let mut written = 0usize;
    for (i, chunk) in payload.chunks(codec.records_per_block() * 128).enumerate() {
        let (block, n) = codec.pack(chunk);
        bte.write_block(extent.first.offset(i as u64), &block).expect("write");
        written += n;
    }
    assert_eq!(written, 100);

    let mut back = Vec::new();
    for id in extent.blocks() {
        let block = bte.read_block(id).expect("read");
        for raw in codec.unpack(&block) {
            back.push(Rec128::from_bytes(raw));
        }
    }
    assert_eq!(back.len(), 100);
    for (a, b) in records.iter().zip(&back) {
        assert_eq!(a.key(), b.key());
        assert_eq!(a.tag(), b.tag());
    }
    std::fs::remove_file(path).ok();
}
