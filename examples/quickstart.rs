//! Quickstart: build a tiny functor pipeline, place it on an emulated
//! active-storage cluster, and run it.
//!
//! The pipeline filters records on the ASUs (the classic active-storage
//! offload: reduce data movement at the source) and tallies survivors on
//! the host.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lmas::core::functor::lib::{FilterFunctor, TallyFunctor};
use lmas::core::{
    generate_rec8, packetize, EdgeKind, FlowGraph, Functor, KeyDist, NodeId, Placement, Rec8,
    RoutingPolicy,
};
use lmas::emulator::{render_summary, run_job, ClusterConfig, Job};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // A cluster of 1 host and 4 ASUs; ASUs run at 1/8 host speed (c=8).
    let cluster = ClusterConfig::era_2002(1, 4, 8.0);

    // 100k records, uniform keys, resident on the ASUs.
    let n = 100_000u64;
    let data = generate_rec8(n, KeyDist::Uniform, 42);

    // Stage 1 (on the ASUs): keep only keys in the top 1/16 of the key
    // space. Stage 2 (on the host): count what survives.
    let mut graph: FlowGraph<Rec8> = FlowGraph::new();
    let threshold = u32::MAX / 16 * 15;
    let filter = graph.add_source_stage(4, move |_| {
        Box::new(FilterFunctor::new("top-sixteenth", move |r: &Rec8| {
            r.key >= threshold
        })) as Box<dyn Functor<Rec8>>
    });
    let count = Arc::new(AtomicU64::new(0));
    let key_sum = Arc::new(AtomicU64::new(0));
    let (c, s) = (count.clone(), key_sum.clone());
    let tally = graph.add_stage(1, move |_| {
        Box::new(TallyFunctor::<Rec8>::with_counters(
            "tally",
            c.clone(),
            s.clone(),
        )) as Box<dyn Functor<Rec8>>
    });
    graph
        .connect(filter, tally, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .expect("valid graph");

    // Placement: one filter instance per ASU, the tally on the host.
    let mut placement = Placement::new();
    placement.spread_over_asus(filter, 4, 4);
    placement.assign(tally, 0, NodeId::Host(0));

    // Each ASU holds a quarter of the data.
    let mut inputs = BTreeMap::new();
    for (i, chunk) in data.chunks(n as usize / 4).enumerate() {
        inputs.insert((filter.0, i), packetize(chunk.to_vec(), 1024));
    }

    let report = run_job(&cluster, Job { graph, placement, inputs }).expect("job runs");
    println!("{}", render_summary(&report));
    let survived = count.load(Ordering::Relaxed);
    println!("records surviving the ASU filter: {survived} of {n} (expected ≈ {})", n / 16);
    println!(
        "the filter ran at the storage: only {:.1}% of the data crossed the interconnect",
        survived as f64 / n as f64 * 100.0
    );
}
