//! TerraFlow watershed analysis on active storage (Section 4.1).
//!
//! Generates a fractal terrain, runs the three-step watershed pipeline —
//! restructure on the ASUs, elevation sort via DSM-Sort, time-forward
//! color propagation on the host — and renders the labeled basins.
//!
//! ```sh
//! cargo run --release --example terraflow_watershed
//! ```

use lmas::emulator::ClusterConfig;
use lmas::gis::{fractal_terrain, matches_oracle, run_terraflow};
use lmas::sort::{DsmConfig, LoadMode};

fn main() {
    let side = 65usize;
    let grid = fractal_terrain(side, side, 0.55, 2026);
    let cluster = ClusterConfig::era_2002(1, 8, 8.0);
    let mut dsm = DsmConfig::new(8, 1024, 8, 4096);
    dsm.input_packet_records = 512;

    println!("TerraFlow watershed labeling of a {side}×{side} fractal terrain");
    println!("cluster: 1 host + 8 ASUs (c = 8)\n");

    let out = run_terraflow(&cluster, &grid, &dsm, LoadMode::Static).expect("pipeline");
    let (t1, t2, t3) = out.times;
    println!("step 1 (restructure, on ASUs):        {t1}");
    println!("step 2 (elevation sort, ASUs+host):   {t2}");
    println!("step 3 (color propagation, host only): {t3}");
    println!("total: {}   watersheds found: {}", out.total(), out.watersheds);
    assert!(matches_oracle(&grid, &out), "labels must match the oracle");
    println!("labels verified against the sequential oracle ✓\n");

    // Render basins (downsampled 2×), one glyph per color.
    const GLYPHS: &[u8] = b".#o+x*%@=-~^:;'\"";
    for y in (0..side).step_by(2) {
        let line: String = (0..side)
            .step_by(2)
            .map(|x| GLYPHS[out.colors[y * side + x] as usize % GLYPHS.len()] as char)
            .collect();
        println!("  {line}");
    }
}
