//! DSM-Sort on an emulated active-storage cluster: the paper's Section
//! 4.3 application, end to end.
//!
//! Sorts a million 128-byte records initially distributed across 16 ASUs,
//! with the distribute functors running *on the storage* and the block
//! sorts on two hosts, then verifies the output is a sorted permutation.
//!
//! ```sh
//! cargo run --release --example dsm_sort_cluster
//! ```

use lmas::core::{generate_rec128, KeyDist, Rec128, Record};
use lmas::emulator::{render_summary, ClusterConfig};
use lmas::sort::{adaptive_config, run_dsm_sort, verify_rec128_output, LoadMode};

fn main() {
    let n: u64 = 1 << 19;
    let cluster = ClusterConfig::era_2002(2, 16, 8.0);
    println!(
        "sorting {n} × {}B records on {} hosts + {} ASUs (c = {})",
        Rec128::SIZE,
        cluster.hosts,
        cluster.asus,
        cluster.cpu_ratio_c
    );

    // Let the model pick (α, γ1, γ2) for this cluster; β is the
    // host-memory-bound run length.
    let dsm = adaptive_config::<Rec128>(&cluster, n, 8192, 16);
    println!(
        "adaptive configuration: α={} β={} γ1={} γ2={}",
        dsm.alpha, dsm.beta, dsm.gamma1, dsm.gamma2
    );

    let data = generate_rec128(n, KeyDist::Uniform, 7);
    let outcome = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort");

    println!("\n== pass 1 (run formation) ==");
    println!("{}", render_summary(&outcome.pass1));
    println!("== pass 2 (merge) ==");
    println!("{}", render_summary(&outcome.pass2));
    println!("total emulated time: {}", outcome.total);

    let sorted = verify_rec128_output(&outcome.output, n).expect("sorted permutation");
    println!(
        "verified: {} records globally sorted (first key {}, last key {})",
        sorted.len(),
        sorted.first().map(|r| r.key()).unwrap_or(0),
        sorted.last().map(|r| r.key()).unwrap_or(0),
    );
}
