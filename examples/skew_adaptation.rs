//! Load management under skew: a miniature of the paper's Figure 10.
//!
//! The input's first half is uniform and second half exponentially
//! skewed. With static subset assignment one host drowns while the other
//! idles; with simple-randomization spreading, both hosts stay busy and
//! the run finishes earlier.
//!
//! ```sh
//! cargo run --release --example skew_adaptation
//! ```

use lmas::emulator::ClusterConfig;
use lmas::sort::skew::{fig10_data_per_asu, uniform_assuming_splitters};
use lmas::sort::{run_pass1, DsmConfig, LoadMode};

fn main() {
    let n = 1u64 << 19;
    let d = 16;
    let cluster = ClusterConfig::era_2002(2, d, 8.0);
    let dsm = DsmConfig::new(16, 4096, 8, 4096);
    let splitters = uniform_assuming_splitters(16);

    println!("skewed sort on 2 hosts + {d} ASUs ({n} records, second half exponential)\n");
    for (label, mode) in [
        ("static assignment (no load control)", LoadMode::Static),
        ("SR spreading (load-managed)", LoadMode::managed_sr()),
    ] {
        let data = fig10_data_per_asu(n, d, 99);
        let run = run_pass1(&cluster, data, splitters.clone(), &dsm, mode).expect("run");
        let h0 = run.report.nodes[0].mean_cpu_util * 100.0;
        let h1 = run.report.nodes[1].mean_cpu_util * 100.0;
        println!("{label}:");
        println!("  makespan {}   host0 {h0:.1}% busy   host1 {h1:.1}% busy", run.report.makespan);
        // Coarse busy-trace: one character per 100 ms.
        for host in 0..2 {
            let series = run.report.host_cpu_series(host);
            let line: String = series
                .iter()
                .map(|v| match (v * 100.0) as u32 {
                    0..=12 => ' ',
                    13..=37 => '.',
                    38..=62 => 'o',
                    63..=87 => 'O',
                    _ => '#',
                })
                .collect();
            println!("  host{host} |{line}|");
        }
        println!();
    }
    println!("legend: ' ' idle · '.' ≈25% · 'o' ≈50% · 'O' ≈75% · '#' ≈100%");
}
