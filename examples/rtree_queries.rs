//! Distributed R-tree spatial queries on active storage (Section 4.2).
//!
//! Builds both Figure-5 organizations — *partition* (a subtree per ASU)
//! and *stripe* (leaves striped across all ASUs) — and runs the same
//! query workload on each, showing the latency/throughput trade the paper
//! describes.
//!
//! ```sh
//! cargo run --release --example rtree_queries
//! ```

use lmas::emulator::ClusterConfig;
use lmas::gis::{linear_scan, random_points, run_queries, DistRTree, Layout, Rect};
use lmas::sim::DetRng;

fn main() {
    let d = 8usize;
    let cluster = ClusterConfig::era_2002(1, d, 8.0);
    let points = random_points(100_000, 5);
    println!("100k points indexed across {d} ASUs; 64 range queries\n");

    let mut rng = DetRng::new(17);
    let queries: Vec<Rect> = (0..64)
        .map(|_| {
            let x = rng.gen_f64() as f32 * 0.85;
            let y = rng.gen_f64() as f32 * 0.85;
            Rect::new(x, y, x + 0.15, y + 0.15)
        })
        .collect();

    for layout in [Layout::Partition, Layout::Stripe] {
        let index = DistRTree::build(points.clone(), d, 32, layout);
        // How many ASUs does a typical query touch?
        let mean_targets: f64 = queries
            .iter()
            .map(|q| index.targets(q).len() as f64)
            .sum::<f64>()
            / queries.len() as f64;
        let run = run_queries(&cluster, &index, &queries, 4).expect("queries");
        // Verify every count against a linear scan.
        for (i, q) in queries.iter().enumerate() {
            let want = linear_scan(&points, q).len() as u64;
            assert_eq!(run.counts[&(i as u32)], want, "query {i}");
        }
        let total: u64 = run.counts.values().sum();
        println!("{layout:?}:");
        println!("  ASUs touched per query (mean): {mean_targets:.1} of {d}");
        println!("  batch makespan: {}", run.report.makespan);
        println!("  total matches: {total} (all verified against linear scan)\n");
    }
    println!("partition touches few ASUs per query (good concurrent throughput);");
    println!("stripe fans every query across all ASUs (bounded single-query latency).");
}
