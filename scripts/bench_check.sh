#!/usr/bin/env bash
# Quick wall-clock sanity pass over the kernel benches.
#
# Builds release, runs the kernel and simulator microbenches with a
# reduced iteration count (override with LMAS_BENCH_ITERS), and leaves
# the ns/unit numbers in results/BENCH_kernels.json and
# results/BENCH_sim.json. Expected shape: radix_sort beats
# comparison_sort on Rec128, packet fan-out is ~0 ns/record (O(1) Arc
# clone, not a deep copy), and calendar schedule+pop stays within a few
# tens of ns per event.
set -euo pipefail
cd "$(dirname "$0")/.."

export LMAS_BENCH_ITERS="${LMAS_BENCH_ITERS:-7}"
# cargo bench runs with cwd = the bench package; pin output to the
# repo-root results/ dir regardless.
export LMAS_RESULTS_DIR="${LMAS_RESULTS_DIR:-$PWD/results}"

echo "== cargo build --release =="
cargo build --release -q

echo "== kernel benches (LMAS_BENCH_ITERS=$LMAS_BENCH_ITERS) =="
cargo bench -q -p lmas-bench --bench kernels

echo "== simulator microbenches (LMAS_BENCH_ITERS=$LMAS_BENCH_ITERS) =="
cargo bench -q -p lmas-bench --bench sim_micro

echo
echo "== $LMAS_RESULTS_DIR/BENCH_kernels.json =="
cat "$LMAS_RESULTS_DIR/BENCH_kernels.json"

echo
echo "== $LMAS_RESULTS_DIR/BENCH_sim.json =="
cat "$LMAS_RESULTS_DIR/BENCH_sim.json"
