#!/usr/bin/env bash
# Aggregate every results/BENCH_*.json into results/BENCH_summary.json:
# one row per bench with its headline metric (the first numeric
# top-level scalar) and every top-level verified_* gate, plus an
# all_verified conjunction across the fleet. Run from the repo root
# after regenerating artifacts; check.sh greps individual artifacts,
# this file is the one-stop dashboard.
set -euo pipefail
cd "$(dirname "$0")/.."

results_dir="${LMAS_RESULTS_DIR:-results}"
python3 - "$results_dir" <<'EOF'
import json, os, sys

results = sys.argv[1]
rows, all_verified = [], True
for name in sorted(os.listdir(results)):
    if not (name.startswith("BENCH_") and name.endswith(".json")):
        continue
    if name == "BENCH_summary.json":
        continue
    with open(os.path.join(results, name)) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{name}: invalid JSON ({e})")
    row = {"file": name}
    if isinstance(doc, dict):
        headline = next(
            ((k, v) for k, v in doc.items() if isinstance(v, (int, float)) and not isinstance(v, bool)),
            None,
        )
        if headline:
            row["headline_metric"], row["headline_value"] = headline
        gates = {k: v for k, v in doc.items() if k.startswith("verified_")}
        if gates:
            row["gates"] = gates
            all_verified &= all(bool(v) for v in gates.values())
    rows.append(row)

summary = {
    "source": "scripts/bench_summary.sh",
    "benches": rows,
    "all_verified": all_verified,
}
out = os.path.join(results, "BENCH_summary.json")
with open(out, "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"[wrote {out}] ({len(rows)} benches, all_verified={all_verified})")
EOF
