#!/usr/bin/env bash
# Full correctness gate: every workspace test plus lint-clean clippy.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test (workspace) =="
cargo test -q

echo "== cargo clippy -D warnings (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism gate (seeded emulation, run twice, diff) =="
cargo build -q --release -p lmas-bench --bin determinism
run1="$(./target/release/determinism)"
run2="$(./target/release/determinism)"
if [ "$run1" != "$run2" ]; then
    echo "determinism gate FAILED: two runs of the pinned emulation differ" >&2
    diff <(echo "$run1") <(echo "$run2") >&2 || true
    exit 1
fi
echo "$run1"

echo "check.sh: all green"
