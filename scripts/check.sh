#!/usr/bin/env bash
# Full correctness gate: every workspace test plus lint-clean clippy.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test (workspace) =="
cargo test -q

echo "== cargo clippy -D warnings (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism gate (seeded emulation + chaos run, twice, diff) =="
# The determinism binary covers both the fault-free pinned sort and a
# pinned chaos run (ASU crash + lossy link): bounces, retries, fencing,
# detection, and repair must all be run-to-run stable.
cargo build -q --release -p lmas-bench --bin determinism
run1="$(./target/release/determinism)"
run2="$(./target/release/determinism)"
if [ "$run1" != "$run2" ]; then
    echo "determinism gate FAILED: two runs of the pinned emulation differ" >&2
    diff <(echo "$run1") <(echo "$run2") >&2 || true
    exit 1
fi
echo "$run1"

echo "== chaos recovery gate (fault sweep at reduced scale) =="
# Every cell of the sweep verifies its recovered output byte-identical
# to the fault-free golden run (the binary asserts it).
cargo build -q --release -p lmas-bench --bin fault_sweep
# Reduced scale, scratch results dir: don't clobber the full-scale
# results/BENCH_faults.json artifact.
LMAS_SCALE="${LMAS_CHAOS_SCALE:-0.25}" LMAS_RESULTS_DIR="$(mktemp -d)" \
    ./target/release/fault_sweep > /dev/null
echo "fault sweep verified (every masked run byte-identical after repair)"

echo "check.sh: all green"
