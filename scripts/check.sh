#!/usr/bin/env bash
# Full correctness gate: every workspace test plus lint-clean clippy.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test (workspace) =="
cargo test -q

echo "== cargo clippy -D warnings (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "check.sh: all green"
