#!/usr/bin/env bash
# Full correctness gate: every workspace test plus lint-clean clippy.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo clippy -D warnings (workspace, all targets) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== determinism gate (seeded emulation + chaos + planned + parallel runs, twice, diff) =="
# The determinism binary covers the fault-free pinned sort, a pinned
# chaos run (ASU crash + lossy link), a planner-placed run with the
# balancer armed, a threads=4 partitioned run, a faulted partitioned
# run (static timelines + per-partition controllers), and a
# snapshot-balanced partitioned run: bounces, retries, fencing, repair,
# plan reports, reweights, and the parallel kernel's merged reports
# must all be run-to-run stable despite real thread interleaving.
cargo build -q --release -p lmas-bench --bin determinism
run1="$(./target/release/determinism)"
run2="$(./target/release/determinism)"
if [ "$run1" != "$run2" ]; then
    echo "determinism gate FAILED: two runs of the pinned emulation differ" >&2
    diff <(echo "$run1") <(echo "$run2") >&2 || true
    exit 1
fi
echo "$run1"

echo "== parallel kernel gate (goldens at 1/2/4/8 threads, byte-diffed) =="
# par_golden re-runs the frozen sequential pins of tests/golden.rs at
# threads 2 and 4 (makespans, dispatch counts, trace FNVs — all must
# match the pre-parallel constants byte-for-byte) and pins
# representative multi-host partitioned runs, faulted ones included;
# par_diff fuzzes random cluster shapes × random fault plans × the
# snapshot balancer across thread counts — faulted and balanced runs go
# through the partitioned engine and must reproduce the sequential run.
# Named here so a parallel-kernel regression fails loudly in its own
# step.
cargo test -q -p lmas-sort --test par_golden --test par_diff > /dev/null
echo "parallel gate verified (pins hold at threads 1/2/4/8; faulted+balanced runs partition)"

echo "== parallel scaling gate (par_scaling at reduced scale, twice, diff; speedup regression guard) =="
# Faulted-parallel determinism: the BENCH-par-sim sweep (fault-free,
# faulted, and faulted+balanced variants at threads 1/2/4/8) must be
# byte-identical across two runs. barrier_wait_hist is wall-clock
# scheduling noise — stripped before the diff; every other figure is
# virtual time and must be stable.
cargo build -q --release -p lmas-bench --bin par_scaling
pg1="$(mktemp -d)"; pg2="$(mktemp -d)"
LMAS_SCALE="${LMAS_PAR_SCALE:-0.1}" LMAS_RESULTS_DIR="$pg1" ./target/release/par_scaling > /dev/null
LMAS_SCALE="${LMAS_PAR_SCALE:-0.1}" LMAS_RESULTS_DIR="$pg2" ./target/release/par_scaling > /dev/null
if ! diff -q <(grep -v barrier_wait_hist "$pg1/BENCH_par_sim.json") \
             <(grep -v barrier_wait_hist "$pg2/BENCH_par_sim.json") > /dev/null; then
    echo "parallel scaling gate FAILED: two par_scaling runs differ" >&2
    diff <(grep -v barrier_wait_hist "$pg1/BENCH_par_sim.json") \
         <(grep -v barrier_wait_hist "$pg2/BENCH_par_sim.json") >&2 || true
    exit 1
fi
# Bench-regression guard: the checked-in full-scale artifact must still
# assert both dispatch-speedup gates (the binary writes `false` — and
# aborts — when a gate misses at full scale).
grep -q '"verified_speedup_ge_4_5_at_8_threads_256_nodes": true' results/BENCH_par_sim.json || {
    echo "bench regression: fault-free 8-thread speedup gate missing from results/BENCH_par_sim.json" >&2
    exit 1
}
grep -q '"verified_faulted_balanced_speedup_ge_2_at_4_threads_256_nodes": true' results/BENCH_par_sim.json || {
    echo "bench regression: faulted 4-thread speedup gate missing from results/BENCH_par_sim.json" >&2
    exit 1
}
echo "parallel scaling verified (artifact deterministic; speedup gates hold in checked-in results)"

echo "== chaos recovery gate (fault sweep at reduced scale) =="
# Every cell of the sweep verifies its recovered output byte-identical
# to the fault-free golden run (the binary asserts it). The storage
# proptests (pool durability/determinism, disk timing) ride along.
cargo test -q -p lmas-storage > /dev/null
cargo build -q --release -p lmas-bench --bin fault_sweep
# Reduced scale, scratch results dir: don't clobber the full-scale
# results/BENCH_faults.json artifact.
LMAS_SCALE="${LMAS_CHAOS_SCALE:-0.25}" LMAS_RESULTS_DIR="$(mktemp -d)" \
    ./target/release/fault_sweep > /dev/null
echo "fault sweep verified (every masked run byte-identical after repair)"

echo "== planner smoke (placement sweep at reduced scale, twice, diff) =="
# Every cell asserts planned <= both naive layouts and that an
# always-in-deadband balancer leaves the planned run untouched; the
# JSON artifact must also be byte-identical across runs.
cargo test -q -p lmas-plan > /dev/null
cargo build -q --release -p lmas-bench --bin placement_sweep
ps1="$(mktemp -d)"; ps2="$(mktemp -d)"
LMAS_SCALE="${LMAS_PLAN_SCALE:-0.25}" LMAS_RESULTS_DIR="$ps1" ./target/release/placement_sweep > /dev/null
LMAS_SCALE="${LMAS_PLAN_SCALE:-0.25}" LMAS_RESULTS_DIR="$ps2" ./target/release/placement_sweep > /dev/null
if ! diff -q "$ps1/BENCH_placement.json" "$ps2/BENCH_placement.json" > /dev/null; then
    echo "planner smoke FAILED: two placement_sweep runs differ" >&2
    diff "$ps1/BENCH_placement.json" "$ps2/BENCH_placement.json" >&2 || true
    exit 1
fi
echo "placement sweep verified (planned never loses to naive layouts; artifact deterministic)"

echo "== storage substrate smoke (disk_scaling at tiny n, twice, diff) =="
# The multi-disk/pool/read-ahead bench must be run-to-run byte-identical
# in all printed virtual-time figures and in its JSON artifact.
cargo build -q --release -p lmas-bench --bin disk_scaling
ds1="$(mktemp -d)"; ds2="$(mktemp -d)"
out1="$(LMAS_SCALE=0.05 LMAS_RESULTS_DIR="$ds1" ./target/release/disk_scaling | sed 's|'"$ds1"'|RESULTS|')"
out2="$(LMAS_SCALE=0.05 LMAS_RESULTS_DIR="$ds2" ./target/release/disk_scaling | sed 's|'"$ds2"'|RESULTS|')"
if [ "$out1" != "$out2" ] || ! diff -q "$ds1/BENCH_storage.json" "$ds2/BENCH_storage.json" > /dev/null; then
    echo "storage smoke FAILED: two disk_scaling runs differ" >&2
    diff <(echo "$out1") <(echo "$out2") >&2 || true
    diff "$ds1/BENCH_storage.json" "$ds2/BENCH_storage.json" >&2 || true
    exit 1
fi
echo "disk_scaling deterministic (stdout + JSON byte-identical across runs)"

echo "== coded shuffle smoke (coded_shuffle at reduced scale, twice, diff) =="
# Coded-shuffle distribute: the r-sweep, planner agreement checks, the
# threads {1,2,4} byte-identity gate, and the r=1-vs-uncoded gate must
# all be run-to-run byte-identical (the thread and r=1 gates are hard
# asserts at any scale; the tracking/agreement gates are asserted at
# full scale and recorded as verified_* booleans here).
cargo build -q --release -p lmas-bench --bin coded_shuffle
cs1="$(mktemp -d)"; cs2="$(mktemp -d)"
LMAS_SCALE="${LMAS_CODED_SCALE:-0.25}" LMAS_RESULTS_DIR="$cs1" ./target/release/coded_shuffle > /dev/null
LMAS_SCALE="${LMAS_CODED_SCALE:-0.25}" LMAS_RESULTS_DIR="$cs2" ./target/release/coded_shuffle > /dev/null
if ! diff -q "$cs1/BENCH_coded.json" "$cs2/BENCH_coded.json" > /dev/null; then
    echo "coded shuffle smoke FAILED: two coded_shuffle runs differ" >&2
    diff "$cs1/BENCH_coded.json" "$cs2/BENCH_coded.json" >&2 || true
    exit 1
fi
# Bench-regression guard: the checked-in full-scale artifact must carry
# all four verified gates (the binary aborts before writing `true` when
# a gate misses at full scale).
for gate in verified_inverse_r_tracking verified_planner_agreement \
            verified_threads_identical verified_r1_matches_uncoded; do
    grep -q "\"$gate\": true" results/BENCH_coded.json || {
        echo "bench regression: $gate missing from results/BENCH_coded.json" >&2
        exit 1
    }
done
echo "coded shuffle verified (1/r tracking + planner agreement hold in checked-in results; artifact deterministic)"

echo "== repair smoke (fleet durability sweep at reduced scale, twice, diff) =="
# Background re-replication: every cell of the fleet × bandwidth sweep
# asserts its measured replica trajectory against the mean-field ODE
# (the binary aborts on a miss), and the JSON artifact must be
# byte-identical across runs. The determinism binary's repair/parrepair
# sections already pin the same engine across thread counts above.
cargo build -q --release -p lmas-bench --bin repair_fleet
rf1="$(mktemp -d)"; rf2="$(mktemp -d)"
LMAS_SCALE="${LMAS_REPAIR_SCALE:-0.1}" LMAS_RESULTS_DIR="$rf1" ./target/release/repair_fleet > /dev/null
LMAS_SCALE="${LMAS_REPAIR_SCALE:-0.1}" LMAS_RESULTS_DIR="$rf2" ./target/release/repair_fleet > /dev/null
if ! diff -q "$rf1/BENCH_repair.json" "$rf2/BENCH_repair.json" > /dev/null; then
    echo "repair smoke FAILED: two repair_fleet runs differ" >&2
    diff "$rf1/BENCH_repair.json" "$rf2/BENCH_repair.json" >&2 || true
    exit 1
fi
# Bench-regression guard: the checked-in full-scale artifact must carry
# the mean-field validation stamp (the binary aborts before writing it
# when any cell misses its tolerance).
grep -q '"verified_mean_field"' results/BENCH_repair.json || {
    echo "bench regression: mean-field stamp missing from results/BENCH_repair.json" >&2
    exit 1
}
echo "repair fleet verified (ODE tolerances hold; artifact deterministic)"

echo "== scheduler smoke (multi_tenant, twice, diff; latency gates) =="
# Multi-tenant scheduler: every >=70%-utilization cell asserts aware
# (residual-planned) placement beats the naive static stack on both
# p50 and p99 latency (the binary aborts on a miss), deep queues admit
# everything, and one cell re-runs byte-identically. The sched crate's
# tests (quota-never-exceeded and starvation-freedom proptests, the
# single-job golden) ride along.
cargo test -q -p lmas-sched > /dev/null
cargo build -q --release -p lmas-bench --bin multi_tenant
mt1="$(mktemp -d)"; mt2="$(mktemp -d)"
LMAS_RESULTS_DIR="$mt1" ./target/release/multi_tenant > /dev/null
LMAS_RESULTS_DIR="$mt2" ./target/release/multi_tenant > /dev/null
if ! diff -q "$mt1/BENCH_sched.json" "$mt2/BENCH_sched.json" > /dev/null; then
    echo "scheduler smoke FAILED: two multi_tenant runs differ" >&2
    diff "$mt1/BENCH_sched.json" "$mt2/BENCH_sched.json" >&2 || true
    exit 1
fi
# Bench-regression guard: the checked-in artifact must carry all four
# verified gates (the binary aborts before writing them on a miss).
for gate in verified_aware_beats_naive_p50_at_70pct verified_aware_beats_naive_p99_at_70pct \
            verified_all_admitted_complete verified_deterministic; do
    grep -q "\"$gate\": true" results/BENCH_sched.json || {
        echo "bench regression: $gate missing from results/BENCH_sched.json" >&2
        exit 1
    }
done
echo "multi-tenant scheduler verified (aware beats naive at >=70% util on p50+p99; artifact deterministic)"

echo "check.sh: all green"
